package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilCheckerNeverTrips(t *testing.T) {
	var c *Checker
	if c.Active() {
		t.Fatal("nil checker active")
	}
	for i := 0; i < 10_000; i++ {
		if err := c.Check(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes(1 << 30); err != nil {
		t.Fatal(err)
	}
	if err := c.Edges(1 << 30); err != nil {
		t.Fatal(err)
	}
	if err := c.Sequences(1 << 30); err != nil {
		t.Fatal(err)
	}
}

func TestNewCheckerUnlimitedIsNil(t *testing.T) {
	if c := NewChecker(context.Background(), Limits{}); c != nil {
		t.Fatal("background context with zero limits should yield a nil checker")
	}
	if c := NewChecker(nil, Limits{}); c != nil {
		t.Fatal("nil context with zero limits should yield a nil checker")
	}
	if c := NewChecker(context.Background(), Limits{MaxGraphNodes: 5}); c == nil {
		t.Fatal("node limit should yield an active checker")
	}
}

func TestDeadlineIsMonotonicDuration(t *testing.T) {
	// The checker converts deadlines to a duration from its start once,
	// then enforces them with time.Since (monotonic): a context deadline
	// far in the wall-clock past trips immediately, and the internal
	// budget is a duration, not a wall-clock instant a time jump could
	// move.
	past, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	c := NewChecker(past, Limits{Wall: time.Hour})
	if !c.hasWall || c.wall >= 0 {
		t.Fatalf("expired context deadline should yield a negative wall budget, got %v", c.wall)
	}
	err := c.CheckNow()
	if be, ok := AsError(err); !ok || be.Resource != ResourceWallClock {
		t.Fatalf("want wall-clock trip, got %v", err)
	}

	// The tighter of Limits.Wall and the context deadline wins, again as
	// a duration.
	ctx, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	c = NewChecker(ctx, Limits{Wall: time.Minute})
	if c.wall != time.Minute {
		t.Fatalf("want the 1m limit to win, got %v", c.wall)
	}
	c = NewChecker(ctx, Limits{Wall: 2 * time.Hour})
	if c.wall > time.Hour || c.wall < 59*time.Minute {
		t.Fatalf("want ~1h context deadline to win, got %v", c.wall)
	}
}

func TestWallClockTrips(t *testing.T) {
	c := NewChecker(context.Background(), Limits{Wall: time.Nanosecond})
	time.Sleep(time.Millisecond)
	c.SetStage("hot-loop")
	err := c.CheckNow()
	be, ok := AsError(err)
	if !ok {
		t.Fatalf("want *Error, got %v", err)
	}
	if be.Resource != ResourceWallClock || be.Stage != "hot-loop" {
		t.Fatalf("got %+v", be)
	}
	if be.Canceled() {
		t.Fatal("deadline expiry must not count as cancellation")
	}
}

func TestRateLimitedCheckEventuallyTrips(t *testing.T) {
	c := NewChecker(context.Background(), Limits{Wall: time.Nanosecond})
	time.Sleep(time.Millisecond)
	var err error
	for i := 0; i < 4*checkInterval && err == nil; i++ {
		err = c.Check()
	}
	if _, ok := AsError(err); !ok {
		t.Fatalf("rate-limited Check never tripped: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewChecker(ctx, Limits{})
	if c == nil {
		t.Fatal("cancelable context should yield an active checker")
	}
	if err := c.CheckNow(); err != nil {
		t.Fatal(err)
	}
	cancel()
	be, ok := AsError(c.CheckNow())
	if !ok || !be.Canceled() {
		t.Fatalf("want canceled budget error, got %+v ok=%v", be, ok)
	}
	if !errors.Is(be, context.Canceled) {
		t.Fatal("budget error should unwrap to context.Canceled")
	}
}

func TestContextDeadlineCountsAsWallClock(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	c := NewChecker(ctx, Limits{})
	be, ok := AsError(c.CheckNow())
	if !ok || be.Resource != ResourceWallClock {
		t.Fatalf("want wall-clock budget error, got %+v ok=%v", be, ok)
	}
	if be.Canceled() {
		t.Fatal("deadline expiry must not count as cancellation")
	}
}

func TestCountableResources(t *testing.T) {
	c := NewChecker(context.Background(), Limits{MaxGraphNodes: 10, MaxClosureEdges: 20, MaxSequences: 3})
	c.SetStage("s")
	if err := c.Nodes(10); err != nil {
		t.Fatal(err)
	}
	be, _ := AsError(c.Nodes(11))
	if be == nil || be.Resource != ResourceGraphNodes || be.Limit != 10 || be.Used != 11 {
		t.Fatalf("got %+v", be)
	}
	if err := c.Edges(20); err != nil {
		t.Fatal(err)
	}
	if be, _ = AsError(c.Edges(21)); be == nil || be.Resource != ResourceClosureEdges {
		t.Fatalf("got %+v", be)
	}
	if err := c.Sequences(3); err != nil {
		t.Fatal(err)
	}
	if be, _ = AsError(c.Sequences(4)); be == nil || be.Resource != ResourceSequences {
		t.Fatalf("got %+v", be)
	}
}

func TestIsolateRecoversPanics(t *testing.T) {
	err := Isolate("unit", func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Stage != "unit" || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("got %+v", pe)
	}
}

func TestIsolatePreservesErrorPanics(t *testing.T) {
	sentinel := errors.New("model invariant")
	err := Isolate("unit", func() error { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("error panic value should unwrap: %v", err)
	}
}

func TestIsolatePassesThroughErrors(t *testing.T) {
	sentinel := errors.New("plain")
	if err := Isolate("unit", func() error { return sentinel }); err != sentinel {
		t.Fatalf("got %v", err)
	}
	if err := Isolate("unit", func() error { return nil }); err != nil {
		t.Fatalf("got %v", err)
	}
}
