// Package lifecycle models the lifecycle state machines of Android
// application components (§4.2, Figure 8): the callback orderings the
// runtime environment enforces for Activities, Services, and Broadcast
// Receivers. The simulated runtime (internal/android) consults these
// machines to drive callbacks in legal orders and to decide where to emit
// enable operations; the analysis side gets its environment model from
// those enables.
//
// Solid edges of Figure 8 are must-happen-after orderings; dashed edges
// are may-happen-after choices. Apply validates single transitions;
// Sequence expands a high-level user/system event into the callback run
// the runtime performs.
package lifecycle

import "fmt"

// State is a lifecycle state (a gray node of Figure 8).
type State int

// Activity lifecycle states.
const (
	Launched State = iota
	Created
	Started
	Running // the paper's "Running" (resumed, foreground)
	Paused
	Stopped
	Restarted
	Destroyed
)

var stateNames = [...]string{
	Launched:  "launched",
	Created:   "created",
	Started:   "started",
	Running:   "running",
	Paused:    "paused",
	Stopped:   "stopped",
	Restarted: "restarted",
	Destroyed: "destroyed",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Callback names an Activity lifecycle callback.
type Callback string

// Activity lifecycle callbacks.
const (
	OnCreate  Callback = "onCreate"
	OnStart   Callback = "onStart"
	OnResume  Callback = "onResume"
	OnPause   Callback = "onPause"
	OnStop    Callback = "onStop"
	OnRestart Callback = "onRestart"
	OnDestroy Callback = "onDestroy"
)

// transition is one edge of the state machine: in state From, callback Cb
// may run and leaves the component in state To.
type transition struct {
	From State
	Cb   Callback
	To   State
}

// activityEdges encodes Figure 8 (completed with the standard
// onPause→onResume return edge of the full Android documentation).
var activityEdges = []transition{
	{Launched, OnCreate, Created},
	{Created, OnStart, Started},
	{Started, OnResume, Running}, // may: activity comes to the foreground
	{Started, OnStop, Stopped},   // may: activity stays in the background
	{Running, OnPause, Paused},   // must-next when leaving the foreground
	{Paused, OnResume, Running},  // may: user returns
	{Paused, OnStop, Stopped},    // may: activity no longer visible
	{Stopped, OnRestart, Restarted},
	{Restarted, OnStart, Started},
	{Stopped, OnDestroy, Destroyed},
}

// Activity is an instance of the Figure 8 machine.
type Activity struct {
	state State
}

// NewActivity returns an activity in the Launched state.
func NewActivity() *Activity { return &Activity{state: Launched} }

// State returns the current lifecycle state.
func (a *Activity) State() State { return a.state }

// Enabled returns the callbacks the runtime may invoke next (the dashed
// may-happen-after successors of the current state).
func (a *Activity) Enabled() []Callback {
	var out []Callback
	for _, e := range activityEdges {
		if e.From == a.state {
			out = append(out, e.Cb)
		}
	}
	return out
}

// CanApply reports whether cb is a legal next callback.
func (a *Activity) CanApply(cb Callback) bool {
	for _, e := range activityEdges {
		if e.From == a.state && e.Cb == cb {
			return true
		}
	}
	return false
}

// Apply performs one callback transition, returning an error when the
// callback is not enabled in the current state.
func (a *Activity) Apply(cb Callback) error {
	for _, e := range activityEdges {
		if e.From == a.state && e.Cb == cb {
			a.state = e.To
			return nil
		}
	}
	return fmt.Errorf("lifecycle: callback %s not enabled in state %s", cb, a.state)
}

// Event is a high-level user or system action affecting an activity.
type Event int

// Activity events.
const (
	// Launch brings a new activity to the foreground.
	Launch Event = iota
	// LeaveForeground pauses and stops the activity (another activity
	// covers it, or HOME is pressed).
	LeaveForeground
	// Return brings a stopped activity back to the foreground.
	Return
	// Finish destroys the activity (BACK pressed, or finish() called).
	Finish
	// Relaunch is a configuration change (e.g. screen rotation): the
	// activity is destroyed and launched again.
	Relaunch
)

func (e Event) String() string {
	switch e {
	case Launch:
		return "launch"
	case LeaveForeground:
		return "leave-foreground"
	case Return:
		return "return"
	case Finish:
		return "finish"
	case Relaunch:
		return "relaunch"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Sequence returns the callback run the runtime performs for event in the
// current state, without applying it. It returns an error when the event
// is not meaningful in the current state.
func (a *Activity) Sequence(ev Event) ([]Callback, error) {
	switch ev {
	case Launch:
		if a.state != Launched {
			return nil, fmt.Errorf("lifecycle: launch in state %s", a.state)
		}
		return []Callback{OnCreate, OnStart, OnResume}, nil
	case LeaveForeground:
		switch a.state {
		case Running:
			return []Callback{OnPause, OnStop}, nil
		case Paused:
			return []Callback{OnStop}, nil
		}
		return nil, fmt.Errorf("lifecycle: leave-foreground in state %s", a.state)
	case Return:
		switch a.state {
		case Stopped:
			return []Callback{OnRestart, OnStart, OnResume}, nil
		case Paused:
			return []Callback{OnResume}, nil
		}
		return nil, fmt.Errorf("lifecycle: return in state %s", a.state)
	case Finish:
		switch a.state {
		case Running:
			return []Callback{OnPause, OnStop, OnDestroy}, nil
		case Paused:
			return []Callback{OnStop, OnDestroy}, nil
		case Stopped:
			return []Callback{OnDestroy}, nil
		}
		return nil, fmt.Errorf("lifecycle: finish in state %s", a.state)
	case Relaunch:
		if a.state != Running {
			return nil, fmt.Errorf("lifecycle: relaunch in state %s", a.state)
		}
		return []Callback{OnPause, OnStop, OnDestroy, OnCreate, OnStart, OnResume}, nil
	}
	return nil, fmt.Errorf("lifecycle: unknown event %v", ev)
}

// ApplyEvent expands event into callbacks and applies them, returning the
// sequence performed. Relaunch resets the machine through Destroyed back
// to a fresh launch.
func (a *Activity) ApplyEvent(ev Event) ([]Callback, error) {
	seq, err := a.Sequence(ev)
	if err != nil {
		return nil, err
	}
	for _, cb := range seq {
		if a.state == Destroyed && cb == OnCreate {
			a.state = Launched // relaunch after destruction
		}
		if err := a.Apply(cb); err != nil {
			return nil, err
		}
	}
	return seq, nil
}
