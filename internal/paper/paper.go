// Package paper embeds the literal example traces and the published
// evaluation numbers from the DroidRacer paper (Maiya, Kanade, Majumdar,
// "Race Detection for Android Applications", PLDI 2014).
//
// Tests validate the happens-before engine and race detector against the
// paper's Figure 3 and Figure 4 traces operation by operation, and the
// benchmark harness compares regenerated Table 2/Table 3 rows against the
// published ones recorded here.
package paper

import "droidracer/internal/trace"

// Idx converts a 1-based operation index, as printed in the paper's
// figures, to the 0-based index used by the trace package.
func Idx(paperIndex int) int { return paperIndex - 1 }

// Figure3 returns the execution trace of Figure 3: the music player
// scenario in which the user clicks the PLAY button. Operation i of the
// figure is at index Idx(i).
func Figure3() *trace.Trace {
	return trace.FromOps([]trace.Op{
		trace.ThreadInit(1),                 // 1
		trace.AttachQ(1),                    // 2
		trace.LoopOnQ(1),                    // 3
		trace.Enable(1, "LAUNCH_ACTIVITY"),  // 4
		trace.Post(0, "LAUNCH_ACTIVITY", 1), // 5
		trace.Begin(1, "LAUNCH_ACTIVITY"),   // 6
		trace.Write(1, "DwFileAct-obj"),     // 7
		trace.Fork(1, 2),                    // 8
		trace.Enable(1, "onDestroy"),        // 9
		trace.End(1, "LAUNCH_ACTIVITY"),     // 10
		trace.ThreadInit(2),                 // 11
		trace.Read(2, "DwFileAct-obj"),      // 12
		trace.Post(2, "onPostExecute", 1),   // 13
		trace.ThreadExit(2),                 // 14
		trace.Begin(1, "onPostExecute"),     // 15
		trace.Read(1, "DwFileAct-obj"),      // 16
		trace.Enable(1, "onPlayClick"),      // 17
		trace.End(1, "onPostExecute"),       // 18
		trace.Post(1, "onPlayClick", 1),     // 19
		trace.Begin(1, "onPlayClick"),       // 20
		trace.Enable(1, "onPause"),          // 21
		trace.End(1, "onPlayClick"),         // 22
		trace.Post(0, "onPause", 1),         // 23
	})
}

// Figure4 returns the execution trace of Figure 4: the variant scenario in
// which the user presses the BACK button instead of PLAY. Operations 1–5
// are the elided prefix shared with Figure 3. The paper reports two data
// races on this trace: (12, 21) and (16, 21) in 1-based figure indices.
func Figure4() *trace.Trace {
	return trace.FromOps([]trace.Op{
		trace.ThreadInit(1),                 // 1
		trace.AttachQ(1),                    // 2
		trace.LoopOnQ(1),                    // 3
		trace.Enable(1, "LAUNCH_ACTIVITY"),  // 4
		trace.Post(0, "LAUNCH_ACTIVITY", 1), // 5
		trace.Begin(1, "LAUNCH_ACTIVITY"),   // 6
		trace.Write(1, "DwFileAct-obj"),     // 7
		trace.Fork(1, 2),                    // 8
		trace.Enable(1, "onDestroy"),        // 9
		trace.End(1, "LAUNCH_ACTIVITY"),     // 10
		trace.ThreadInit(2),                 // 11
		trace.Read(2, "DwFileAct-obj"),      // 12
		trace.Post(2, "onPostExecute", 1),   // 13
		trace.ThreadExit(2),                 // 14
		trace.Begin(1, "onPostExecute"),     // 15
		trace.Read(1, "DwFileAct-obj"),      // 16
		trace.Enable(1, "onPlayClick"),      // 17
		trace.End(1, "onPostExecute"),       // 18
		trace.Post(0, "onDestroy", 1),       // 19
		trace.Begin(1, "onDestroy"),         // 20
		trace.Write(1, "DwFileAct-obj"),     // 21
		trace.End(1, "onDestroy"),           // 22
	})
}

// Table2Row is one row of the paper's Table 2 ("Statistics about
// applications and traces").
type Table2Row struct {
	App         string
	LOC         int // 0 for proprietary applications (source unavailable)
	Proprietary bool
	TraceLen    int
	Fields      int
	ThreadsNoQ  int
	ThreadsQ    int
	AsyncTasks  int
}

// Table2 holds the published Table 2, in the paper's row order (ascending
// trace length; open-source applications first).
var Table2 = []Table2Row{
	{App: "Aard Dictionary", LOC: 4044, TraceLen: 1355, Fields: 189, ThreadsNoQ: 2, ThreadsQ: 1, AsyncTasks: 58},
	{App: "Music Player", LOC: 11012, TraceLen: 5532, Fields: 521, ThreadsNoQ: 3, ThreadsQ: 2, AsyncTasks: 62},
	{App: "My Tracks", LOC: 26146, TraceLen: 7305, Fields: 573, ThreadsNoQ: 11, ThreadsQ: 7, AsyncTasks: 164},
	{App: "Messenger", LOC: 27593, TraceLen: 10106, Fields: 845, ThreadsNoQ: 11, ThreadsQ: 4, AsyncTasks: 99},
	{App: "Tomdroid Notes", LOC: 3215, TraceLen: 10120, Fields: 413, ThreadsNoQ: 3, ThreadsQ: 1, AsyncTasks: 348},
	{App: "FBReader", LOC: 50042, TraceLen: 10723, Fields: 322, ThreadsNoQ: 14, ThreadsQ: 1, AsyncTasks: 119},
	{App: "Browser", LOC: 30874, TraceLen: 19062, Fields: 963, ThreadsNoQ: 13, ThreadsQ: 4, AsyncTasks: 103},
	{App: "OpenSudoku", LOC: 6151, TraceLen: 24901, Fields: 334, ThreadsNoQ: 5, ThreadsQ: 1, AsyncTasks: 45},
	{App: "K-9 Mail", LOC: 54119, TraceLen: 29662, Fields: 1296, ThreadsNoQ: 7, ThreadsQ: 2, AsyncTasks: 689},
	{App: "SGTPuzzles", LOC: 2368, TraceLen: 38864, Fields: 566, ThreadsNoQ: 4, ThreadsQ: 1, AsyncTasks: 80},
	{App: "Remind Me", Proprietary: true, TraceLen: 10348, Fields: 348, ThreadsNoQ: 3, ThreadsQ: 1, AsyncTasks: 176},
	{App: "Twitter", Proprietary: true, TraceLen: 16975, Fields: 1362, ThreadsNoQ: 21, ThreadsQ: 5, AsyncTasks: 97},
	{App: "Adobe Reader", Proprietary: true, TraceLen: 33866, Fields: 1267, ThreadsNoQ: 17, ThreadsQ: 4, AsyncTasks: 226},
	{App: "Facebook", Proprietary: true, TraceLen: 52146, Fields: 801, ThreadsNoQ: 16, ThreadsQ: 3, AsyncTasks: 16},
	{App: "Flipkart", Proprietary: true, TraceLen: 157539, Fields: 2065, ThreadsNoQ: 36, ThreadsQ: 3, AsyncTasks: 105},
}

// Count is a reported/true-positive pair in the paper's "X(Y)" notation.
// True is -1 when the paper could not triage (proprietary applications).
type Count struct {
	Reported int
	True     int
}

// Table3Row is one row of Table 3 ("Data races reported by DroidRacer")
// plus the unknown-category counts reported in the running text.
type Table3Row struct {
	App           string
	Proprietary   bool
	Multithreaded Count
	CrossPosted   Count
	CoEnabled     Count
	Delayed       Count
	Unknown       Count
}

// Table3 holds the published Table 3 in row order.
var Table3 = []Table3Row{
	{App: "Aard Dictionary", Multithreaded: Count{1, 1}},
	{App: "Music Player", CrossPosted: Count{17, 4}, CoEnabled: Count{11, 10}, Delayed: Count{4, 0}, Unknown: Count{3, 2}},
	{App: "My Tracks", Multithreaded: Count{1, 0}, CrossPosted: Count{2, 1}, CoEnabled: Count{1, 0}},
	{App: "Messenger", Multithreaded: Count{1, 1}, CrossPosted: Count{15, 5}, CoEnabled: Count{4, 3}, Delayed: Count{2, 2}},
	{App: "Tomdroid Notes", CrossPosted: Count{5, 2}, CoEnabled: Count{1, 0}},
	{App: "FBReader", Multithreaded: Count{1, 0}, CrossPosted: Count{22, 22}, CoEnabled: Count{14, 4}},
	{App: "Browser", Multithreaded: Count{2, 1}, CrossPosted: Count{64, 2}},
	{App: "OpenSudoku", Multithreaded: Count{1, 0}, CrossPosted: Count{1, 0}},
	{App: "K-9 Mail", Multithreaded: Count{9, 2}, CoEnabled: Count{1, 0}},
	{App: "SGTPuzzles", Multithreaded: Count{11, 10}, CrossPosted: Count{21, 8}},
	{App: "Remind Me", Proprietary: true, CrossPosted: Count{21, -1}, CoEnabled: Count{33, -1}},
	{App: "Twitter", Proprietary: true, CrossPosted: Count{20, -1}, CoEnabled: Count{7, -1}, Delayed: Count{4, -1}},
	{App: "Adobe Reader", Proprietary: true, Multithreaded: Count{34, -1}, CrossPosted: Count{73, -1}, Delayed: Count{9, -1}, Unknown: Count{9, -1}},
	{App: "Facebook", Proprietary: true, Multithreaded: Count{12, -1}, CrossPosted: Count{10, -1}},
	{App: "Flipkart", Proprietary: true, Multithreaded: Count{12, -1}, CrossPosted: Count{152, -1}, CoEnabled: Count{84, -1}, Delayed: Count{30, -1}, Unknown: Count{36, -1}},
}

// Performance facts from §6 of the paper, used to validate the
// node-merging optimization and overhead benchmarks.
const (
	// MergeRatioMin and MergeRatioMax bound the published merged-graph size
	// as a fraction of the trace length (1.4%–24.8%).
	MergeRatioMin = 0.014
	MergeRatioMax = 0.248
	// MergeRatioAvg is the published average ratio (11.1%).
	MergeRatioAvg = 0.111
	// TraceGenSlowdownMax is the published trace-generation slowdown (5x).
	TraceGenSlowdownMax = 5.0
)
