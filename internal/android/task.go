package android

import (
	"fmt"

	"droidracer/internal/sched"
	"droidracer/internal/trace"
)

// Handler posts asynchronous tasks to one destination thread, like
// android.os.Handler.
type Handler struct {
	env  *Env
	dest *sched.Thread
}

// MainHandler returns a handler bound to the main (UI) thread.
func (e *Env) MainHandler() *Handler { return &Handler{env: e, dest: e.main} }

// Dest returns the thread the handler posts to.
func (h *Handler) Dest() *sched.Thread { return h.dest }

// Post posts fn as an asynchronous task named base.
func (h *Handler) Post(c *Ctx, base string, fn func(*Ctx)) trace.TaskID {
	rec := c.rec
	return c.T.Post(h.dest, base, func(t *sched.Thread) {
		fn(h.env.ctx(t, rec))
	})
}

// PostDelayed posts fn with a timeout in virtual milliseconds.
func (h *Handler) PostDelayed(c *Ctx, base string, fn func(*Ctx), delay int64) trace.TaskID {
	rec := c.rec
	return c.T.PostDelayed(h.dest, base, func(t *sched.Thread) {
		fn(h.env.ctx(t, rec))
	}, delay)
}

// PostAtFront posts fn to the front of the destination queue
// (Handler.postAtFrontOfQueue; the paper's future-work extension).
func (h *Handler) PostAtFront(c *Ctx, base string, fn func(*Ctx)) trace.TaskID {
	rec := c.rec
	return c.T.PostFront(h.dest, base, func(t *sched.Thread) {
		fn(h.env.ctx(t, rec))
	})
}

// RemoveCallbacks cancels a pending posted task (Handler.removeCallbacks).
func (h *Handler) RemoveCallbacks(c *Ctx, id trace.TaskID) {
	c.T.Cancel(h.dest, id)
}

// NewHandlerThread forks a named thread with its own task queue and looper
// (android.os.HandlerThread) and returns a handler bound to it.
func (c *Ctx) NewHandlerThread(name string) *Handler {
	dest := c.T.Fork(name, func(t *sched.Thread) {
		t.AttachQueue()
		t.Loop()
	})
	// Callers may post immediately; the post happens-after attachQ by the
	// ATTACH-Q-MT rule, and the scheduler guarantees the queue exists by
	// construction order only under round-robin, so wait explicitly.
	c.T.WaitQueue(dest)
	return &Handler{env: c.Env, dest: dest}
}

// AsyncTask mirrors android.os.AsyncTask (Figure 1 of the paper):
// OnPreExecute runs synchronously on the caller (main) thread, a fresh
// background thread runs DoInBackground (Figure 2, step 7), progress is
// published back to the main thread, and OnPostExecute is posted to the
// main thread when the background work finishes.
type AsyncTask struct {
	Name             string
	OnPreExecute     func(c *Ctx)
	DoInBackground   func(c *Ctx, publish func())
	OnProgressUpdate func(c *Ctx)
	OnPostExecute    func(c *Ctx)
}

// Execute starts the task from the current (main-thread) context and
// returns the background thread.
func (c *Ctx) Execute(a *AsyncTask) *sched.Thread {
	e := c.Env
	rec := c.rec
	if a.OnPreExecute != nil {
		a.OnPreExecute(c)
	}
	return c.T.Fork(a.Name+"-bg", func(t *sched.Thread) {
		bc := e.ctx(t, rec)
		publish := func() {
			if a.OnProgressUpdate == nil {
				return
			}
			t.Post(e.main, a.Name+".onProgressUpdate", func(mt *sched.Thread) {
				a.OnProgressUpdate(e.ctx(mt, rec))
			})
		}
		if a.DoInBackground != nil {
			a.DoInBackground(bc, publish)
		}
		if a.OnPostExecute != nil {
			t.Post(e.main, a.Name+".onPostExecute", func(mt *sched.Thread) {
				a.OnPostExecute(e.ctx(mt, rec))
			})
		}
	})
}

// ScheduleTimer schedules fn to run once after delay virtual milliseconds
// on the process-wide timer thread (java.util.Timer). The task is enabled
// at scheduling time, connecting the schedule to the execution as §5
// describes for TimerTask. The returned ID can cancel it via CancelTimer.
func (c *Ctx) ScheduleTimer(name string, delay int64, fn func(*Ctx)) trace.TaskID {
	e := c.Env
	rec := c.rec
	id := e.sim.FreshTask(name)
	c.T.Enable(id)
	c.T.PostTaskDelayed(e.timerThread(c), id, func(t *sched.Thread) {
		fn(e.ctx(t, rec))
	}, delay)
	return id
}

// CancelTimer cancels a scheduled timer task.
func (c *Ctx) CancelTimer(id trace.TaskID) {
	if c.Env.timer == nil {
		return
	}
	c.T.Cancel(c.Env.timer, id)
}

// SchedulePeriodic schedules fn to run `count` times at the given virtual
// interval on the timer thread (Timer.scheduleAtFixedRate). Each firing
// enables and schedules the next, so the executions form a happens-before
// chain — the periodic TimerTask connection §5 describes.
func (c *Ctx) SchedulePeriodic(name string, interval int64, count int, fn func(*Ctx)) {
	if count <= 0 {
		return
	}
	e := c.Env
	rec := c.rec
	var arm func(c *Ctx, k int)
	arm = func(cc *Ctx, k int) {
		id := e.sim.FreshTask(fmt.Sprintf("%s.tick%d", name, k+1))
		cc.T.Enable(id)
		cc.T.PostTaskDelayed(e.timerThread(cc), id, func(t *sched.Thread) {
			tc := e.ctx(t, rec)
			fn(tc)
			if k+1 < count {
				arm(tc, k+1)
			}
		}, interval)
	}
	arm(c, 0)
}

// timerThread lazily creates the process-wide timer thread.
func (e *Env) timerThread(c *Ctx) *sched.Thread {
	if e.timer == nil {
		e.timer = c.T.Fork("timer", func(t *sched.Thread) {
			t.AttachQueue()
			t.Loop()
		})
		c.T.WaitQueue(e.timer)
	}
	return e.timer
}

// idleEntry is one registered MessageQueue idle handler.
type idleEntry struct {
	id  trace.TaskID
	fn  func(*Ctx)
	rec *activityRecord
}

// AddIdleHandler registers fn to run once when the main looper next
// becomes idle (MessageQueue.addIdleHandler). Registration enables the
// execution, connecting the two as §5 describes for IdleHandler.
func (c *Ctx) AddIdleHandler(name string, fn func(*Ctx)) {
	e := c.Env
	id := e.sim.FreshTask(name)
	c.T.Enable(id)
	e.idle = append(e.idle, idleEntry{id: id, fn: fn, rec: c.rec})
}

// dispatchIdleHandlers is the main looper's idle hook: it turns each
// pending idle handler into a self-posted task and reports whether it
// scheduled work.
func (e *Env) dispatchIdleHandlers(t *sched.Thread) bool {
	if len(e.idle) == 0 {
		return false
	}
	pending := e.idle
	e.idle = nil
	for _, entry := range pending {
		entry := entry
		t.PostTask(e.main, entry.id, func(mt *sched.Thread) {
			entry.fn(e.ctx(mt, entry.rec))
		})
	}
	return true
}
