package core_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/trace"
)

// syntheticTrace builds a valid execution of the given number of tasks:
// one looper thread consuming FIFO-posted tasks, each touching one of 64
// shared locations. 25000 tasks ≈ 100k operations.
func syntheticTrace(tasks int) *trace.Trace {
	tr := &trace.Trace{}
	tr.Append(trace.ThreadInit(1))
	tr.Append(trace.AttachQ(1))
	tr.Append(trace.LoopOnQ(1))
	for i := 0; i < tasks; i++ {
		task := trace.TaskID(fmt.Sprintf("T%d", i))
		loc := trace.Loc(fmt.Sprintf("shared%d", i%64))
		tr.Append(trace.Post(0, task, 1))
		tr.Append(trace.Begin(1, task))
		tr.Append(trace.Write(1, loc))
		tr.Append(trace.End(1, task))
	}
	return tr
}

// TestAnalyzeDeadlineDegrades is the headline robustness property: a
// 50 ms deadline on a ≥100k-op trace produces a degraded report well
// within 2× the deadline — no hang, no panic, no OOM from the O(n²)
// closure the full analysis would attempt.
func TestAnalyzeDeadlineDegrades(t *testing.T) {
	tr := syntheticTrace(25000)
	if tr.Len() < 100000 {
		t.Fatalf("synthetic trace too small: %d ops", tr.Len())
	}
	opts := core.DefaultOptions()
	opts.Budget = core.Budget{Wall: 50 * time.Millisecond}
	start := time.Now()
	res, err := core.Analyze(tr, opts)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("degradation should absorb the budget error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("full analysis of 100k ops in 50ms is implausible; expected a degraded result")
	}
	if res.DegradedReason == nil {
		t.Fatal("degraded result carries no reason")
	}
	if be, ok := budget.AsError(res.DegradedReason); !ok || be.Resource != budget.ResourceWallClock {
		t.Fatalf("reason = %v", res.DegradedReason)
	}
	if res.Graph != nil {
		t.Fatal("degraded result should not carry the abandoned graph")
	}
	// The synthetic trace has no multithreaded races (all writes ordered
	// by the looper), so the pure-MT fallback reports nothing — the point
	// is that a report exists at all.
	if res.Trace == nil || res.Stats.Length == 0 {
		t.Fatal("degraded result is missing trace/stats")
	}
	// 2× the deadline, the acceptance bound, with the budget polled even
	// inside bitset allocation; allow scheduling noise on top.
	if elapsed > 2*(50*time.Millisecond)+50*time.Millisecond {
		t.Fatalf("analysis took %v, want ≤ ~100ms", elapsed)
	}
}

// TestAnalyzeBudgetErrorWithPartialResult asserts that with degradation
// off, budget exhaustion surfaces as a typed *budget.Error alongside the
// partial result built so far.
func TestAnalyzeBudgetErrorWithPartialResult(t *testing.T) {
	tr := syntheticTrace(25000)
	opts := core.DefaultOptions()
	opts.Budget = core.Budget{Wall: 50 * time.Millisecond}
	opts.DegradeOnBudget = false
	res, err := core.Analyze(tr, opts)
	be, ok := budget.AsError(err)
	if !ok {
		t.Fatalf("want *budget.Error, got %v", err)
	}
	if be.Canceled() {
		t.Fatal("deadline expiry is not a cancellation")
	}
	if res == nil || res.Trace == nil {
		t.Fatal("no partial result alongside the budget error")
	}
	if res.Degraded {
		t.Fatal("partial result must not be marked degraded")
	}
}

// TestAnalyzeNodeBudget asserts MaxGraphNodes trips before the O(n²)
// reachability allocation and degrades.
func TestAnalyzeNodeBudget(t *testing.T) {
	tr := syntheticTrace(2000)
	opts := core.DefaultOptions()
	opts.Budget = core.Budget{MaxGraphNodes: 100}
	res, err := core.Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("node cap should degrade")
	}
	be, ok := budget.AsError(res.DegradedReason)
	if !ok || be.Resource != budget.ResourceGraphNodes {
		t.Fatalf("reason = %v", res.DegradedReason)
	}
	if be.Stage != "happens-before" {
		t.Fatalf("stage = %q", be.Stage)
	}
}

// TestAnalyzeEdgeBudget asserts MaxClosureEdges bounds the fixpoint.
func TestAnalyzeEdgeBudget(t *testing.T) {
	tr := syntheticTrace(500)
	opts := core.DefaultOptions()
	opts.Budget = core.Budget{MaxClosureEdges: 1000}
	res, err := core.Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("edge cap should degrade")
	}
	be, ok := budget.AsError(res.DegradedReason)
	if !ok || be.Resource != budget.ResourceClosureEdges {
		t.Fatalf("reason = %v", res.DegradedReason)
	}
}

// TestAnalyzeCancellationPropagates asserts explicit cancellation is
// never absorbed by degradation.
func TestAnalyzeCancellationPropagates(t *testing.T) {
	tr := syntheticTrace(25000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := core.DefaultOptions() // DegradeOnBudget is true
	res, err := core.AnalyzeContext(ctx, tr, opts)
	be, ok := budget.AsError(err)
	if !ok || !be.Canceled() {
		t.Fatalf("want canceled budget error, got %v (res=%+v)", err, res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("error chain should reach context.Canceled")
	}
}

// TestAnalyzeUnbudgetedUnchanged asserts the unbudgeted path still
// produces a full, non-degraded result.
func TestAnalyzeUnbudgetedUnchanged(t *testing.T) {
	tr := syntheticTrace(200)
	res, err := core.Analyze(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Graph == nil {
		t.Fatalf("unbudgeted analysis degraded: %+v", res)
	}
}
