package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"droidracer/internal/core"
	"droidracer/internal/faultinject"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/report"
	"droidracer/internal/trace"
)

// serverHelperEnv marks the re-exec'd daemon of the ingestion chaos
// test; its value is the shared spool/state root.
const serverHelperEnv = "DROIDRACER_SERVER_HELPER"

// TestServerHelperProcess is the subprocess body of the ingestion chaos
// test: a miniature racedetd — journal recovery, supervised pool,
// ingestion server, spool sweep — that serves until the parent kills it
// (or the armed server.accept kill-point does).
func TestServerHelperProcess(t *testing.T) {
	dir := os.Getenv(serverHelperEnv)
	if dir == "" {
		t.Skip("helper subprocess only")
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	spool := filepath.Join(dir, "spool")
	state := filepath.Join(dir, "state")
	if err := os.MkdirAll(spool, 0o777); err != nil {
		die(err)
	}
	if err := os.MkdirAll(state, 0o777); err != nil {
		die(err)
	}
	jpath := filepath.Join(state, "daemon.journal")
	entries, err := journal.Recover(jpath)
	if err != nil {
		die(err)
	}
	w, err := journal.Create(jpath)
	if err != nil {
		die(err)
	}
	var srv *Server
	pool := jobs.NewPool(jobs.Config{
		Workers:    1,
		QueueDepth: 8,
		Journal:    w,
		Quarantine: &jobs.Quarantine{Dir: filepath.Join(state, "quarantine")},
		OnFinish: func(out report.Outcome) {
			if s := srv; s != nil {
				s.JobFinished(out)
			}
		},
	})
	srv = New(Config{
		Pool:        pool,
		Spool:       spool,
		Analyze:     core.DefaultOptions(),
		Workers:     1,
		StorageErr:  w.Err, // mirror racedetd: a poisoned journal refuses work
		Completed:   jobs.CompletedRecords(entries),
		Quarantined: jobs.QuarantinedJobs(entries),
	})
	_, bound, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		die(err)
	}
	// Publish the bound address atomically so the parent never reads a
	// half-written file.
	addrPath := filepath.Join(dir, "addr")
	if err := os.WriteFile(addrPath+".tmp", []byte(bound), 0o666); err != nil {
		die(err)
	}
	if err := os.Rename(addrPath+".tmp", addrPath); err != nil {
		die(err)
	}
	for {
		ents, err := os.ReadDir(spool)
		if err == nil {
			for _, e := range ents {
				if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
					continue
				}
				if !srv.Claim(e.Name()) {
					continue
				}
				job := jobs.TraceJob(e.Name(), filepath.Join(spool, e.Name()), core.DefaultOptions())
				if err := pool.Submit(job); err != nil {
					srv.Release(e.Name())
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// helperCmd re-execs the test binary as the helper daemon over dir,
// optionally arming the server.accept kill-point. Extra environment
// entries (e.g. a DROIDRACER_STORAGE_FAULT spec) apply to the helper
// only — the parent's copies of both chaos variables are stripped.
func helperCmd(t *testing.T, dir string, arm bool, extraEnv ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestServerHelperProcess$", "-test.v")
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, faultinject.EnvKillpoint+"=") ||
			strings.HasPrefix(kv, faultinject.EnvStorageFault+"=") ||
			strings.HasPrefix(kv, serverHelperEnv+"=") {
			continue
		}
		cmd.Env = append(cmd.Env, kv)
	}
	cmd.Env = append(cmd.Env, serverHelperEnv+"="+dir)
	cmd.Env = append(cmd.Env, extraEnv...)
	if arm {
		cmd.Env = append(cmd.Env, faultinject.EnvKillpoint+"=server.accept")
	}
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	return cmd, &out
}

// waitAddr polls for the helper's published listen address.
func waitAddr(t *testing.T, dir string, log *bytes.Buffer) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(filepath.Join(dir, "addr")); err == nil && len(b) > 0 {
			return string(b)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("helper never published its address\n%s", log.String())
	return ""
}

// TestServerKilledMidAccept is the acceptance chaos test of the
// ingestion layer: SIGKILL the daemon mid-request — after the trace is
// durably spooled, before the pool accepted it or the client heard 202 —
// then restart it and resubmit the same body under the same content-
// derived idempotency key. The converged state must hold exactly one
// journal record for the job, with the same race-set digest a local
// analysis of the trace produces: accepted work is never lost and never
// duplicated.
func TestServerKilledMidAccept(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	dir := t.TempDir()
	body := figure4Body(t)
	id := IdempotencyKey(body)
	name := jobName(id)

	// Incarnation 1: die at the server.accept kill-point.
	cmd, log := helperCmd(t, dir, true)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := waitAddr(t, dir, log)
	if _, err := http.Post("http://"+addr+"/v1/jobs", "text/plain", bytes.NewReader(body)); err == nil {
		t.Fatalf("submission against an armed kill-point returned a response\n%s", log.String())
	}
	werr := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(werr, &ee) || ee.ExitCode() != faultinject.KillExitCode {
		t.Fatalf("helper exit = %v, want kill at server.accept\n%s", werr, log.String())
	}
	// The durability promise: the trace reached the spool before the
	// crash, even though no acknowledgement ever left the process.
	if _, err := os.Stat(filepath.Join(dir, "spool", name)); err != nil {
		t.Fatalf("accepted trace not durable across SIGKILL: %v", err)
	}

	// Incarnation 2: clean restart. The sweep re-ingests the spooled
	// trace; the client retries the same body under the same key.
	if err := os.Remove(filepath.Join(dir, "addr")); err != nil {
		t.Fatal(err)
	}
	cmd2, log2 := helperCmd(t, dir, false)
	if err := cmd2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	addr2 := waitAddr(t, dir, log2)
	c := &Client{BaseURL: "http://" + addr2, BaseBackoff: 10 * time.Millisecond, MaxAttempts: 8, Seed: 7}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	resp, _, err := c.Submit(ctx, body)
	if err != nil {
		t.Fatalf("resubmission failed: %v\n%s", err, log2.String())
	}
	if resp.Job != id {
		t.Fatalf("resubmission job = %q, want %q", resp.Job, id)
	}
	var done *SubmitResponse
	pollDeadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(pollDeadline) {
		done, err = c.Status(ctx, id)
		if err == nil && done.Status == StatusDone {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if done == nil || done.Status != StatusDone {
		t.Fatalf("job never completed after restart: %+v\n%s", done, log2.String())
	}
	cmd2.Process.Kill()
	cmd2.Wait()

	// Convergence proof, part 1: exactly one journal record — the retry
	// coalesced instead of re-running.
	entries, err := journal.Recover(filepath.Join(dir, "state", "daemon.journal"))
	if err != nil {
		t.Fatal(err)
	}
	var records []jobs.JobEntry
	for _, e := range entries {
		if e.Type != "job" {
			continue
		}
		var je jobs.JobEntry
		if err := e.Decode(&je); err != nil {
			t.Fatal(err)
		}
		if je.Name == name {
			records = append(records, je)
		}
	}
	if len(records) != 1 {
		t.Fatalf("journal has %d records for %s, want exactly 1: %+v", len(records), name, records)
	}
	// Part 2: the race set matches an independent local analysis of the
	// same trace — the crash changed nothing about the answer.
	tr, err := trace.ParseBytes(body)
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := core.AnalyzeContext(context.Background(), tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := jobs.ResultDigest(localRes)
	if records[0].Digest != want || records[0].Digest == "" {
		t.Fatalf("journaled digest %q != local digest %q", records[0].Digest, want)
	}
	if done.Digest != want {
		t.Fatalf("replayed digest %q != local digest %q", done.Digest, want)
	}
}
