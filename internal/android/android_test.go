package android

import (
	"strings"
	"testing"
	"testing/quick"

	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// testActivity is a configurable activity for framework tests.
type testActivity struct {
	BaseActivity
	onCreate  func(c *Ctx)
	onResume  func(c *Ctx)
	onPause   func(c *Ctx)
	onStop    func(c *Ctx)
	onRestart func(c *Ctx)
	onDestroy func(c *Ctx)
	log       *[]string
}

func (a *testActivity) note(s string) {
	if a.log != nil {
		*a.log = append(*a.log, s)
	}
}

func (a *testActivity) OnCreate(c *Ctx) {
	a.note("create")
	if a.onCreate != nil {
		a.onCreate(c)
	}
}
func (a *testActivity) OnStart(c *Ctx) { a.note("start") }
func (a *testActivity) OnResume(c *Ctx) {
	a.note("resume")
	if a.onResume != nil {
		a.onResume(c)
	}
}
func (a *testActivity) OnPause(c *Ctx) {
	a.note("pause")
	if a.onPause != nil {
		a.onPause(c)
	}
}
func (a *testActivity) OnStop(c *Ctx) {
	a.note("stop")
	if a.onStop != nil {
		a.onStop(c)
	}
}
func (a *testActivity) OnRestart(c *Ctx) {
	a.note("restart")
	if a.onRestart != nil {
		a.onRestart(c)
	}
}
func (a *testActivity) OnDestroy(c *Ctx) {
	a.note("destroy")
	if a.onDestroy != nil {
		a.onDestroy(c)
	}
}

// mustRun drives the env to quiescence.
func mustRun(t *testing.T, e *Env) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// finish shuts the env down and validates the trace against the Figure 5
// semantics.
func finish(t *testing.T, e *Env) *trace.Trace {
	t.Helper()
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	if i, err := semantics.ValidateInferred(tr); err != nil {
		t.Fatalf("trace invalid at op %d: %v", i, err)
	}
	return tr
}

func TestLaunchRunsLifecycleCallbacks(t *testing.T) {
	var log []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("Main", func() Activity { return &testActivity{log: &log} })
	if err := e.Launch("Main"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	tr := finish(t, e)
	if got := strings.Join(log, ","); got != "create,start,resume" {
		t.Fatalf("callbacks = %q", got)
	}
	// The launch task exists and enable(onDestroy) follows within it.
	var sawLaunchBegin, sawDestroyEnable bool
	for _, op := range tr.Ops() {
		if op.Kind == trace.OpBegin && strings.Contains(string(op.Task), "LAUNCH_ACTIVITY") {
			sawLaunchBegin = true
		}
		if op.Kind == trace.OpEnable && strings.Contains(string(op.Task), "onDestroy") {
			sawDestroyEnable = true
		}
	}
	if !sawLaunchBegin || !sawDestroyEnable {
		t.Fatalf("launch shape wrong: begin=%v destroyEnable=%v", sawLaunchBegin, sawDestroyEnable)
	}
}

func TestLaunchUnregisteredFails(t *testing.T) {
	e := NewEnv(DefaultOptions())
	defer e.Close()
	if err := e.Launch("Nope"); err == nil {
		t.Fatal("launch of unregistered activity accepted")
	}
}

func TestButtonClickAndRearm(t *testing.T) {
	clicks := 0
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("Main", func() Activity {
		return &testActivity{onCreate: func(c *Ctx) {
			c.AddButton("go", true, func(c *Ctx) { clicks++ })
		}}
	})
	if err := e.Launch("Main"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	evs := e.EnabledEvents()
	var click UIEvent
	found := false
	for _, ev := range evs {
		if ev.Kind == EvClick && ev.Widget == "go" {
			click = ev
			found = true
		}
	}
	if !found {
		t.Fatalf("click(go) not among enabled events: %v", evs)
	}
	for i := 0; i < 2; i++ {
		if err := e.Fire(click); err != nil {
			t.Fatal(err)
		}
		mustRun(t, e)
	}
	tr := finish(t, e)
	if clicks != 2 {
		t.Fatalf("clicks = %d, want 2", clicks)
	}
	// Each firing is a distinct task with its own enable before its post.
	enableIdx := map[trace.TaskID]int{}
	for i, op := range tr.Ops() {
		switch op.Kind {
		case trace.OpEnable:
			if _, dup := enableIdx[op.Task]; !dup {
				enableIdx[op.Task] = i
			}
		case trace.OpPost:
			if strings.Contains(string(op.Task), "go.onClick") {
				ei, ok := enableIdx[op.Task]
				if !ok || ei > i {
					t.Fatalf("post of %s not preceded by its enable", op.Task)
				}
			}
		}
	}
}

func TestDisabledWidgetNotFireable(t *testing.T) {
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("Main", func() Activity {
		return &testActivity{onCreate: func(c *Ctx) {
			c.AddButton("play", false, func(c *Ctx) {})
		}}
	})
	if err := e.Launch("Main"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	for _, ev := range e.EnabledEvents() {
		if ev.Kind == EvClick && ev.Widget == "play" {
			t.Fatal("disabled widget listed as enabled")
		}
	}
	if err := e.Fire(UIEvent{Kind: EvClick, Widget: "play"}); err == nil {
		t.Fatal("fire on disabled widget accepted")
	}
	e.Close()
}

func TestSetEnabledEmitsEnable(t *testing.T) {
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("Main", func() Activity {
		return &testActivity{
			onCreate: func(c *Ctx) { c.AddButton("play", false, func(c *Ctx) {}) },
			onResume: func(c *Ctx) { c.SetEnabled("play", true) },
		}
	})
	if err := e.Launch("Main"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	tr := finish(t, e)
	found := false
	for _, op := range tr.Ops() {
		if op.Kind == trace.OpEnable && strings.Contains(string(op.Task), "play.onClick") {
			found = true
		}
	}
	if !found {
		t.Fatal("setEnabled(true) did not emit enable")
	}
}

func TestTextEvents(t *testing.T) {
	var got []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("Main", func() Activity {
		return &testActivity{onCreate: func(c *Ctx) {
			c.AddTextField("email", true, []string{"a@b.c", "x@y.z"}, func(c *Ctx, v string) {
				got = append(got, v)
			})
		}}
	})
	if err := e.Launch("Main"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	var textEvents []UIEvent
	for _, ev := range e.EnabledEvents() {
		if ev.Kind == EvText {
			textEvents = append(textEvents, ev)
		}
	}
	if len(textEvents) != 2 {
		t.Fatalf("text events = %v, want 2 candidate inputs", textEvents)
	}
	if err := e.Fire(textEvents[1]); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if len(got) != 1 || got[0] != "x@y.z" {
		t.Fatalf("inputs delivered = %v", got)
	}
}

func TestStartActivityLifecycle(t *testing.T) {
	var log []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{log: &log, onCreate: func(c *Ctx) {
			c.AddButton("next", true, func(c *Ctx) { c.StartActivity("B") })
		}}
	})
	e.RegisterActivity("B", func() Activity {
		return &testActivity{onCreate: func(c *Ctx) { log = append(log, "B.create") }}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvClick, Widget: "next"}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	got := strings.Join(log, ",")
	// A pauses, B launches, then A stops.
	want := "create,start,resume,pause,B.create,stop"
	if got != want {
		t.Fatalf("lifecycle order = %q, want %q", got, want)
	}
}

func TestBackDestroysAndReturnsToPrevious(t *testing.T) {
	var log []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{log: &log, onCreate: func(c *Ctx) {
			c.AddButton("next", true, func(c *Ctx) { c.StartActivity("B") })
		}}
	})
	e.RegisterActivity("B", func() Activity { return &testActivity{} })
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvClick, Widget: "next"}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	log = nil
	if err := e.Fire(UIEvent{Kind: EvBack}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	// A restarts after B is destroyed.
	if got := strings.Join(log, ","); got != "restart,start,resume" {
		t.Fatalf("A after BACK on B = %q", got)
	}
	if e.Exited() {
		t.Fatal("app exited with A still on the stack")
	}
}

func TestBackOnRootExitsApp(t *testing.T) {
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity { return &testActivity{} })
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvBack}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if !e.Exited() {
		t.Fatal("app did not exit")
	}
	if evs := e.EnabledEvents(); len(evs) != 0 {
		t.Fatalf("events after exit: %v", evs)
	}
}

func TestHomeAndReturn(t *testing.T) {
	var log []string
	opts := DefaultOptions()
	opts.EnableHome = true
	e := NewEnv(opts)
	e.RegisterActivity("A", func() Activity { return &testActivity{log: &log} })
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvHome}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	evs := e.EnabledEvents()
	if len(evs) != 1 || evs[0].Kind != EvReturn {
		t.Fatalf("events while stopped = %v, want only return", evs)
	}
	if err := e.Fire(evs[0]); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if got := strings.Join(log, ","); got != "create,start,resume,pause,stop,restart,start,resume" {
		t.Fatalf("lifecycle = %q", got)
	}
}

func TestRotateRelaunchesFreshInstance(t *testing.T) {
	instances := 0
	var log []string
	opts := DefaultOptions()
	opts.EnableRotate = true
	e := NewEnv(opts)
	e.RegisterActivity("A", func() Activity {
		instances++
		return &testActivity{log: &log}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvRotate}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if instances != 2 {
		t.Fatalf("factory ran %d times, want 2", instances)
	}
	if got := strings.Join(log, ","); got != "create,start,resume,pause,stop,destroy,create,start,resume" {
		t.Fatalf("lifecycle = %q", got)
	}
}

func TestAsyncTaskPhases(t *testing.T) {
	var log []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			c.Execute(&AsyncTask{
				Name:         "dl",
				OnPreExecute: func(c *Ctx) { log = append(log, "pre") },
				DoInBackground: func(c *Ctx, publish func()) {
					log = append(log, "bg")
					publish()
					publish()
				},
				OnProgressUpdate: func(c *Ctx) { log = append(log, "progress") },
				OnPostExecute:    func(c *Ctx) { log = append(log, "post") },
			})
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	tr := finish(t, e)
	if got := strings.Join(log, ","); got != "pre,bg,progress,progress,post" {
		t.Fatalf("phases = %q", got)
	}
	// The background phase runs on a forked thread: the trace has a fork.
	sawFork := false
	for _, op := range tr.Ops() {
		if op.Kind == trace.OpFork {
			sawFork = true
		}
	}
	if !sawFork {
		t.Fatal("AsyncTask did not fork a background thread")
	}
}

func TestHandlerPostDelayedFrontRemove(t *testing.T) {
	var log []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			h := c.Env.MainHandler()
			h.Post(c, "t1", func(c *Ctx) { log = append(log, "t1") })
			h.PostDelayed(c, "t2", func(c *Ctx) { log = append(log, "t2") }, 100)
			h.PostAtFront(c, "t0", func(c *Ctx) { log = append(log, "t0") })
			id := h.Post(c, "victim", func(c *Ctx) { log = append(log, "victim") })
			h.RemoveCallbacks(c, id)
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if got := strings.Join(log, ","); got != "t0,t1,t2" {
		t.Fatalf("order = %q, want t0,t1,t2", got)
	}
}

func TestHandlerThread(t *testing.T) {
	var workerID trace.ThreadID
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			h := c.NewHandlerThread("io")
			h.Post(c, "work", func(c *Ctx) {
				workerID = c.T.ID()
				c.Write("result")
			})
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	tr := finish(t, e)
	if workerID == e.Main().ID() || workerID == 0 {
		t.Fatalf("work ran on thread %d, want the handler thread", workerID)
	}
	// The handler thread has its own queue in the trace.
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasQueue(workerID) {
		t.Fatal("handler thread has no queue in the trace")
	}
}

func TestServiceLifecycleCallbacks(t *testing.T) {
	var log []string
	e := NewEnv(DefaultOptions())
	e.RegisterService("Sync", func() Service {
		return &funcService{
			onCreate:  func(c *Ctx) { log = append(log, "svc.create") },
			onStart:   func(c *Ctx) { log = append(log, "svc.start") },
			onDestroy: func(c *Ctx) { log = append(log, "svc.destroy") },
		}
	})
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			c.StartService("Sync")
			c.StartService("Sync")
			c.StopService("Sync")
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if got := strings.Join(log, ","); got != "svc.create,svc.start,svc.start,svc.destroy" {
		t.Fatalf("service callbacks = %q", got)
	}
}

type funcService struct {
	BaseService
	onCreate, onStart, onDestroy func(c *Ctx)
}

func (s *funcService) OnCreate(c *Ctx) {
	if s.onCreate != nil {
		s.onCreate(c)
	}
}
func (s *funcService) OnStartCommand(c *Ctx) {
	if s.onStart != nil {
		s.onStart(c)
	}
}
func (s *funcService) OnDestroy(c *Ctx) {
	if s.onDestroy != nil {
		s.onDestroy(c)
	}
}

func TestBroadcastReceiver(t *testing.T) {
	var got []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			h := c.RegisterReceiver("net.change", func(c *Ctx, action string) {
				got = append(got, action)
			})
			c.SendBroadcast("net.change")
			c.SendBroadcast("other.action") // no receiver; dropped
			_ = h
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if len(got) != 1 || got[0] != "net.change" {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestUnregisteredReceiverNotDelivered(t *testing.T) {
	delivered := false
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			h := c.RegisterReceiver("evt", func(c *Ctx, string2 string) { delivered = true })
			c.UnregisterReceiver(h)
			c.SendBroadcast("evt")
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if delivered {
		t.Fatal("unregistered receiver got the broadcast")
	}
}

func TestTimerScheduleAndCancel(t *testing.T) {
	var fired []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			c.ScheduleTimer("tick", 100, func(c *Ctx) { fired = append(fired, "tick") })
			id := c.ScheduleTimer("cancelled", 200, func(c *Ctx) { fired = append(fired, "cancelled") })
			c.CancelTimer(id)
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if got := strings.Join(fired, ","); got != "tick" {
		t.Fatalf("fired = %q, want tick only", got)
	}
}

func TestEnabledEventsOrderDeterministic(t *testing.T) {
	mk := func() *Env {
		e := NewEnv(DefaultOptions())
		e.RegisterActivity("A", func() Activity {
			return &testActivity{onCreate: func(c *Ctx) {
				c.AddButton("one", true, func(c *Ctx) {})
				c.AddButton("two", true, func(c *Ctx) {})
			}}
		})
		if err := e.Launch("A"); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	ea, eb := a.EnabledEvents(), b.EnabledEvents()
	if len(ea) != len(eb) || len(ea) != 3 { // two clicks + BACK
		t.Fatalf("events = %v vs %v", ea, eb)
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("order differs: %v vs %v", ea, eb)
		}
	}
}

// busyApp exercises most framework features for the validity property.
func busyApp(e *Env) {
	e.RegisterService("S", func() Service {
		return &funcService{onStart: func(c *Ctx) {
			c.NewHandlerThread("svc-worker").Post(c, "svcwork", func(c *Ctx) { c.Write("svc") })
		}}
	})
	e.RegisterActivity("Main", func() Activity {
		return &testActivity{onCreate: func(c *Ctx) {
			c.AddButton("go", true, func(c *Ctx) {
				c.Execute(&AsyncTask{
					Name:           "job",
					DoInBackground: func(c *Ctx, publish func()) { c.Write("data"); publish() },
					OnProgressUpdate: func(c *Ctx) {
						c.Read("data")
					},
					OnPostExecute: func(c *Ctx) { c.Read("data") },
				})
			})
			c.AddButton("svc", true, func(c *Ctx) { c.StartService("S") })
		}, onResume: func(c *Ctx) {
			c.ScheduleTimer("refresh", 50, func(c *Ctx) { c.Write("refreshed") })
			c.Acquire("mu")
			c.Write("state")
			c.Release("mu")
		}}
	})
}

// TestQuickEnvTracesValidate runs the busy app under random seeds and
// event choices; every produced trace must be a valid Figure 5 execution.
func TestQuickEnvTracesValidate(t *testing.T) {
	f := func(seed int64) bool {
		opts := DefaultOptions()
		opts.Seed = seed
		e := NewEnv(opts)
		busyApp(e)
		if err := e.Launch("Main"); err != nil {
			t.Log(err)
			return false
		}
		for k := 0; k < 4; k++ {
			if err := e.Run(); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			evs := e.EnabledEvents()
			if len(evs) == 0 {
				break
			}
			ev := evs[int((uint64(seed)+uint64(k)*7)%uint64(len(evs)))]
			if err := e.Fire(ev); err != nil {
				t.Logf("seed %d: fire %v: %v", seed, ev, err)
				return false
			}
		}
		if err := e.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := e.Shutdown(); err != nil {
			t.Logf("seed %d: shutdown: %v", seed, err)
			return false
		}
		if i, err := semantics.ValidateInferred(e.Trace()); err != nil {
			t.Logf("seed %d: op %d: %v", seed, i, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvDeterministicTraces(t *testing.T) {
	run := func() *trace.Trace {
		opts := DefaultOptions()
		opts.Seed = 99
		e := NewEnv(opts)
		busyApp(e)
		if err := e.Launch("Main"); err != nil {
			t.Fatal(err)
		}
		mustRun(t, e)
		if err := e.Fire(UIEvent{Kind: EvClick, Widget: "go"}); err != nil {
			t.Fatal(err)
		}
		mustRun(t, e)
		return finish(t, e)
	}
	a, b := run(), run()
	if a.Len() != b.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Ops() {
		if a.Op(i) != b.Op(i) {
			t.Fatalf("op %d differs: %v vs %v", i, a.Op(i), b.Op(i))
		}
	}
}

func TestIsSystemThread(t *testing.T) {
	e := NewEnv(DefaultOptions())
	defer e.Close()
	for _, b := range e.binders {
		if !e.IsSystemThread(b.ID()) {
			t.Fatal("binder not marked system")
		}
	}
	if e.IsSystemThread(e.Main().ID()) {
		t.Fatal("main marked system")
	}
}

func TestBinderPoolRotation(t *testing.T) {
	opts := DefaultOptions()
	opts.BinderThreads = 2
	e := NewEnv(opts)
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) { c.StartActivity("B") }}
	})
	e.RegisterActivity("B", func() Activity { return &testActivity{} })
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	tr := finish(t, e)
	posters := map[trace.ThreadID]bool{}
	for _, op := range tr.Ops() {
		if op.Kind == trace.OpPost && e.IsSystemThread(op.Thread) {
			posters[op.Thread] = true
		}
	}
	if len(posters) < 2 {
		t.Fatalf("binder pool not rotating: posts from %v", posters)
	}
}
