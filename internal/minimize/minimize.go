// Package minimize shrinks an execution trace while preserving a chosen
// data race — delta-debugging support for race reports, complementing the
// explanations of internal/explain. The result is a small witness trace a
// developer can read end to end (and render with racedet -dot).
//
// The reduction is greedy over three candidate classes, largest first:
//
//  1. whole threads (with every task transitively posted by them),
//  2. whole asynchronous tasks (with every task transitively posted from
//     inside them),
//  3. memory accesses of unrelated locations (always safe: accesses
//     induce no happens-before edges).
//
// A candidate removal is kept only when the reduced trace is still a
// valid execution (Figure 5) and the race — identified structurally via
// race.AccessKey, not by position — is still reported.
package minimize

import (
	"fmt"

	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// Result is a completed minimization.
type Result struct {
	// Trace is the reduced trace.
	Trace *trace.Trace
	// Race is the preserved race, re-indexed into the reduced trace.
	Race race.Race
	// Removed counts operations eliminated from the original.
	Removed int
}

// Minimize reduces tr while preserving r (which must be a race detected
// on tr under cfg).
func Minimize(tr *trace.Trace, r race.Race, cfg hb.Config) (*Result, error) {
	info, err := trace.Analyze(tr)
	if err != nil {
		return nil, err
	}
	keyA, err := race.KeyOf(info, r.First)
	if err != nil {
		return nil, err
	}
	keyB, err := race.KeyOf(info, r.Second)
	if err != nil {
		return nil, err
	}
	m := &minimizer{cfg: cfg, keyA: keyA, keyB: keyB}
	if !m.racePresent(tr) {
		return nil, fmt.Errorf("minimize: the given race is not present in the trace")
	}

	cur := tr
	// Drop unrelated accesses first: always happens-before-safe and
	// usually the bulk of the trace.
	if reduced := m.try(cur, dropForeignAccesses(cur, keyA.Loc, keyB.Loc)); reduced != nil {
		cur = reduced
	}
	// Then greedily remove threads and tasks to a fixpoint.
	for {
		reduced := m.removeOneCandidate(cur)
		if reduced == nil {
			break
		}
		cur = reduced
	}

	info, err = trace.Analyze(cur)
	if err != nil {
		return nil, err
	}
	a, b := race.FindAccess(info, keyA), race.FindAccess(info, keyB)
	first, second := a, b
	if second < first {
		first, second = second, first
	}
	g := hb.Build(info, m.cfg)
	out := race.Race{
		First:    first,
		Second:   second,
		Loc:      keyA.Loc,
		Category: race.NewDetector(g).Classify(first, second),
	}
	return &Result{Trace: cur, Race: out, Removed: tr.Len() - cur.Len()}, nil
}

type minimizer struct {
	cfg        hb.Config
	keyA, keyB race.AccessKey
}

// racePresent checks the identified pair still conflicts and is unordered.
func (m *minimizer) racePresent(tr *trace.Trace) bool {
	info, err := trace.Analyze(tr)
	if err != nil {
		return false
	}
	if i, err := semantics.ValidateInferred(tr); err != nil || i >= 0 {
		return false
	}
	a, b := race.FindAccess(info, m.keyA), race.FindAccess(info, m.keyB)
	if a < 0 || b < 0 || a == b {
		return false
	}
	if !tr.Op(a).Conflicts(tr.Op(b)) {
		return false
	}
	g := hb.Build(info, m.cfg)
	return !g.HappensBefore(a, b) && !g.HappensBefore(b, a)
}

// try returns candidate when it is a valid reduction preserving the race,
// else nil. A nil or not-smaller candidate is rejected outright.
func (m *minimizer) try(cur, candidate *trace.Trace) *trace.Trace {
	if candidate == nil || candidate.Len() >= cur.Len() {
		return nil
	}
	if !m.racePresent(candidate) {
		return nil
	}
	return candidate
}

// removeOneCandidate attempts every thread and task removal and returns
// the first successful reduction, or nil.
func (m *minimizer) removeOneCandidate(cur *trace.Trace) *trace.Trace {
	info, err := trace.Analyze(cur)
	if err != nil {
		return nil
	}
	for _, t := range info.Threads() {
		if reduced := m.try(cur, dropThread(cur, info, t)); reduced != nil {
			return reduced
		}
	}
	// Tasks in trace order.
	seen := map[trace.TaskID]bool{}
	for _, op := range cur.Ops() {
		if op.Kind != trace.OpBegin || seen[op.Task] {
			continue
		}
		seen[op.Task] = true
		if reduced := m.try(cur, dropTasks(cur, info, map[trace.TaskID]bool{op.Task: true})); reduced != nil {
			return reduced
		}
	}
	return nil
}

// dropForeignAccesses removes read/write operations on locations other
// than the racing ones.
func dropForeignAccesses(tr *trace.Trace, keep ...trace.Loc) *trace.Trace {
	keepSet := map[trace.Loc]bool{}
	for _, l := range keep {
		keepSet[l] = true
	}
	out := trace.New(tr.Len())
	for _, op := range tr.Ops() {
		if op.Kind.IsAccess() && !keepSet[op.Loc] {
			continue
		}
		out.Append(op)
	}
	return out
}

// taskClosure expands the victim set with every task posted from inside a
// victim task (their posts disappear with the parent).
func taskClosure(tr *trace.Trace, info *trace.Info, victims map[trace.TaskID]bool) {
	for changed := true; changed; {
		changed = false
		for _, op := range tr.Ops() {
			if op.Kind != trace.OpPost || victims[op.Task] {
				continue
			}
			if parent := info.Task(info.PostIdx(op.Task)); parent != "" && victims[parent] {
				victims[op.Task] = true
				changed = true
			}
		}
	}
}

// dropTasks removes every operation belonging to the victim tasks, their
// posts and enables, transitively including tasks posted from inside them.
func dropTasks(tr *trace.Trace, info *trace.Info, victims map[trace.TaskID]bool) *trace.Trace {
	taskClosure(tr, info, victims)
	out := trace.New(tr.Len())
	for i, op := range tr.Ops() {
		if victims[info.Task(i)] {
			continue
		}
		switch op.Kind {
		case trace.OpPost, trace.OpEnable, trace.OpCancel:
			if victims[op.Task] {
				continue
			}
		}
		out.Append(op)
	}
	return out
}

// dropThread removes a thread: all its operations, fork/join references
// to it, every post targeting its queue, and (transitively) every task it
// posted anywhere.
func dropThread(tr *trace.Trace, info *trace.Info, t trace.ThreadID) *trace.Trace {
	victims := map[trace.TaskID]bool{}
	for _, op := range tr.Ops() {
		if op.Kind == trace.OpPost && (op.Thread == t || op.Other == t) {
			victims[op.Task] = true
		}
	}
	taskClosure(tr, info, victims)
	out := trace.New(tr.Len())
	for i, op := range tr.Ops() {
		if op.Thread == t || victims[info.Task(i)] {
			continue
		}
		switch op.Kind {
		case trace.OpFork, trace.OpJoin:
			if op.Other == t {
				continue
			}
		case trace.OpPost, trace.OpEnable, trace.OpCancel:
			if victims[op.Task] {
				continue
			}
		}
		out.Append(op)
	}
	return out
}
