package sched

import (
	"fmt"

	"droidracer/internal/trace"
)

// Program is the body of a simulated thread.
type Program func(t *Thread)

// TaskFunc is the body of an asynchronous task.
type TaskFunc func(t *Thread)

type tstate int

const (
	stateNew tstate = iota
	stateReady
	stateRunning
	stateBlocked
	stateDone
)

type blockReason int

const (
	blockNone blockReason = iota
	blockQueue
	blockLock
	blockJoin
	blockAttach
	blockFlag
)

func (b blockReason) String() string {
	switch b {
	case blockQueue:
		return "queue"
	case blockLock:
		return "lock"
	case blockJoin:
		return "join"
	case blockAttach:
		return "queue attach"
	case blockFlag:
		return "ad-hoc flag"
	default:
		return "none"
	}
}

// killed aborts a thread goroutine during Close or after a runtime error.
type killed struct{}

// Thread is one simulated thread. Its methods may only be called from the
// thread's own Program/TaskFunc (they yield to the scheduler), except
// where noted.
type Thread struct {
	sim     *Sim
	id      trace.ThreadID
	name    string
	grant   chan struct{}
	state   tstate
	block   blockReason
	program Program

	queue  *msgQueue  // task queue; nil until AttachQueue
	input  []*message // pending UI input events (looper self-posts)
	cmds   []func(*Thread)
	quit   bool
	daemon bool
	// idleHook runs when the looper is about to block on an empty queue;
	// returning true means it scheduled more work (Android's IdleHandler).
	idleHook func(*Thread) bool

	held    map[trace.LockID]int
	current trace.TaskID // task executing on this thread ("" when idle)
	exited  bool
}

// ID returns the thread's trace identifier.
func (t *Thread) ID() trace.ThreadID { return t.id }

// Name returns the thread's human-readable name.
func (t *Thread) Name() string { return t.name }

// HasQueue reports whether the thread attached a task queue (driver-safe).
func (t *Thread) HasQueue() bool { return t.queue != nil }

// Exited reports whether the thread emitted threadexit (driver-safe).
func (t *Thread) Exited() bool { return t.exited }

// main is the goroutine body wrapping the thread program.
func (t *Thread) main() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killed); ok {
				t.sim.events <- threadEvent{t, evFinished}
				return
			}
			if t.sim.err == nil {
				if errVal, ok := r.(error); ok {
					// Preserve typed panic values (android.ModelError) for
					// errors.As on the run's error.
					t.sim.err = fmt.Errorf("sched: thread t%d (%s) panicked: %w", t.id, t.name, errVal)
				} else {
					t.sim.err = fmt.Errorf("sched: thread t%d (%s) panicked: %v", t.id, t.name, r)
				}
			}
			t.sim.events <- threadEvent{t, evFinished}
		}
	}()
	t.awaitGrant()
	t.exec(trace.ThreadInit(t.id), nil)
	t.program(t)
	if len(t.held) > 0 {
		t.sim.fail("sched: thread t%d (%s) exited holding locks", t.id, t.name)
	}
	t.exited = true
	t.sim.emit(trace.ThreadExit(t.id))
	t.sim.events <- threadEvent{t, evFinished}
}

func (t *Thread) awaitGrant() {
	if _, ok := <-t.grant; !ok {
		panic(killed{})
	}
}

// exec performs one operation while holding the turn: emit the trace
// operation, apply the state change, then yield and wait for the next
// grant.
func (t *Thread) exec(op trace.Op, apply func()) {
	t.sim.emit(op)
	if apply != nil {
		apply()
	}
	t.sim.events <- threadEvent{t, evYield}
	t.awaitGrant()
}

// blockOn yields the turn reporting a blocked state and waits to be woken
// and granted again.
func (t *Thread) blockOn(r blockReason) {
	t.block = r
	t.sim.events <- threadEvent{t, evBlocked}
	t.awaitGrant()
}

// Read logs a read of m.
func (t *Thread) Read(m trace.Loc) { t.exec(trace.Read(t.id, m), nil) }

// Write logs a write of m.
func (t *Thread) Write(m trace.Loc) { t.exec(trace.Write(t.id, m), nil) }

// Enable logs that the environment may now post task p.
func (t *Thread) Enable(p trace.TaskID) { t.exec(trace.Enable(t.id, p), nil) }

// Acquire takes lock l, blocking while another thread holds it. Locks are
// reentrant, as in the paper's ACQUIRE rule.
func (t *Thread) Acquire(l trace.LockID) {
	for {
		ls := t.sim.locks[l]
		if ls == nil {
			ls = &lockState{}
			t.sim.locks[l] = ls
		}
		if ls.owner == nil || ls.owner == t {
			ls.owner = t
			ls.count++
			t.held[l]++
			t.exec(trace.Acquire(t.id, l), nil)
			return
		}
		t.blockOn(blockLock)
	}
}

// Release releases lock l, waking any waiters.
func (t *Thread) Release(l trace.LockID) {
	ls := t.sim.locks[l]
	if ls == nil || ls.owner != t {
		t.sim.fail("sched: thread t%d releases lock %s it does not hold", t.id, l)
	}
	t.exec(trace.Release(t.id, l), func() {
		ls.count--
		t.held[l]--
		if t.held[l] == 0 {
			delete(t.held, l)
		}
		if ls.count == 0 {
			ls.owner = nil
			for _, o := range t.sim.threads {
				if o.state == stateBlocked && o.block == blockLock {
					t.sim.wake(o)
				}
			}
		}
	})
}

// Fork spawns a new thread running program and logs the fork.
func (t *Thread) Fork(name string, program Program) *Thread {
	child := t.sim.newThread(name)
	child.program = program
	go child.main()
	t.exec(trace.Fork(t.id, child.id), func() { t.sim.makeReady(child) })
	return child
}

// Join waits for child to finish and logs the join.
func (t *Thread) Join(child *Thread) {
	for {
		if child.state == stateDone && child.exited {
			t.exec(trace.Join(t.id, child.id), nil)
			return
		}
		if child.state == stateDone {
			t.sim.fail("sched: join on killed thread t%d", child.id)
		}
		t.blockOn(blockJoin)
	}
}

// AttachQueue attaches a task queue to the thread and wakes threads
// waiting in WaitQueue.
func (t *Thread) AttachQueue() {
	if t.queue != nil {
		t.sim.fail("sched: thread t%d already has a queue", t.id)
	}
	t.exec(trace.AttachQ(t.id), func() {
		t.queue = newMsgQueue()
		for _, o := range t.sim.threads {
			if o.state == stateBlocked && o.block == blockAttach {
				t.sim.wake(o)
			}
		}
	})
}

// WaitQueue blocks until dest has attached its task queue. It emits no
// trace operation: the real Android runtime provides this ordering
// structurally (the main looper exists before application code runs), and
// the ATTACH-Q-MT happens-before rule accounts for it in the analysis.
func (t *Thread) WaitQueue(dest *Thread) {
	for dest.queue == nil {
		t.blockOn(blockAttach)
	}
}

// Post posts task fn under the given base name to thread dest, which must
// have attached a queue. The concrete unique task name is returned.
func (t *Thread) Post(dest *Thread, base string, fn TaskFunc) trace.TaskID {
	return t.post(dest, t.sim.FreshTask(base), fn, 0, false)
}

// PostDelayed posts fn to run after delay virtual milliseconds.
func (t *Thread) PostDelayed(dest *Thread, base string, fn TaskFunc, delay int64) trace.TaskID {
	return t.post(dest, t.sim.FreshTask(base), fn, delay, false)
}

// PostFront posts fn to the front of dest's queue (the extension beyond
// the paper's FIFO semantics).
func (t *Thread) PostFront(dest *Thread, base string, fn TaskFunc) trace.TaskID {
	return t.post(dest, t.sim.FreshTask(base), fn, 0, true)
}

// PostTask posts fn under a pre-allocated unique task ID (from
// Sim.FreshTask). The Android environment model uses this to tie enable
// operations to the exact task a later post delivers.
func (t *Thread) PostTask(dest *Thread, task trace.TaskID, fn TaskFunc) trace.TaskID {
	return t.post(dest, task, fn, 0, false)
}

// PostTaskDelayed is PostTask with a virtual-time delay.
func (t *Thread) PostTaskDelayed(dest *Thread, task trace.TaskID, fn TaskFunc, delay int64) trace.TaskID {
	return t.post(dest, task, fn, delay, false)
}

func (t *Thread) post(dest *Thread, task trace.TaskID, fn TaskFunc, delay int64, front bool) trace.TaskID {
	if dest.queue == nil {
		t.sim.fail("sched: post %q to thread t%d (%s) without a queue", task, dest.id, dest.name)
	}
	m := &message{task: task, fn: fn}
	var op trace.Op
	switch {
	case delay > 0:
		op = trace.PostDelayed(t.id, task, dest.id, delay)
	case front:
		op = trace.PostFront(t.id, task, dest.id)
	default:
		op = trace.Post(t.id, task, dest.id)
	}
	t.exec(op, func() {
		switch {
		case delay > 0:
			t.sim.seq++
			t.sim.delayed.push(&delayedMsg{due: t.sim.now + delay, seq: t.sim.seq, dest: dest, msg: m})
		case front:
			dest.queue.pushFront(m)
			t.sim.wakeQueueWaiter(dest)
		default:
			dest.queue.push(m)
			t.sim.wakeQueueWaiter(dest)
		}
		dest.queue.known[task] = m
	})
	return task
}

// Cancel removes a pending post of task p from dest's queue (Android's
// removeCallbacks). Cancelling a task that already ran is a no-op.
func (t *Thread) Cancel(dest *Thread, p trace.TaskID) {
	if dest.queue == nil {
		t.sim.fail("sched: cancel on thread t%d without a queue", dest.id)
	}
	t.exec(trace.Cancel(t.id, p), func() {
		if m := dest.queue.known[p]; m != nil {
			m.cancelled = true
			dest.queue.remove(p)
		}
	})
}

// Loop attaches semantics of the paper's loopOnQ: the thread processes its
// queue, running each task to completion between begin/end operations,
// blocking when idle, and returning once a stop was requested and the
// queue drained. AttachQueue must have been called.
func (t *Thread) Loop() {
	if t.queue == nil {
		t.sim.fail("sched: loopOnQ on thread t%d without a queue", t.id)
	}
	t.exec(trace.LoopOnQ(t.id), nil)
	for {
		// Input events first: the looper itself posts the handler, exactly
		// like Android's input dispatch (Figure 3, operation 19).
		if len(t.input) > 0 {
			m := t.input[0]
			t.input = t.input[1:]
			t.exec(trace.Post(t.id, m.task, t.id), func() {
				t.queue.push(m)
				t.queue.known[m.task] = m
			})
			continue
		}
		if m := t.queue.pop(); m != nil {
			t.current = m.task
			t.exec(trace.Begin(t.id, m.task), nil)
			m.fn(t)
			t.current = ""
			t.exec(trace.End(t.id, m.task), nil)
			continue
		}
		if t.idleHook != nil && t.idleHook(t) {
			continue // the hook scheduled more work
		}
		if t.quit {
			return
		}
		t.blockOn(blockQueue)
	}
}

// SetIdleHook installs fn to run when the looper is about to block on an
// empty queue (the MessageQueue.IdleHandler mechanism). fn returns true
// when it scheduled more work.
func (t *Thread) SetIdleHook(fn func(*Thread) bool) { t.idleHook = fn }

// CommandLoop services injected commands (the binder-thread model): each
// command runs with this thread's identity, outside any task.
func (t *Thread) CommandLoop() {
	for {
		if len(t.cmds) > 0 {
			c := t.cmds[0]
			t.cmds = t.cmds[1:]
			c(t)
			continue
		}
		if t.quit {
			return
		}
		t.blockOn(blockQueue)
	}
}

// CurrentTask returns the task executing on this thread, or "".
func (t *Thread) CurrentTask() trace.TaskID { return t.current }

// SetFlag raises an ad-hoc synchronization flag, waking waiters. No trace
// operation is emitted: flags model synchronization that is INVISIBLE to
// the instrumentation (condition polling, volatile hand-offs, native
// code), the false-positive source §6 of the paper discusses. The real
// execution order is enforced, but the analysis cannot derive it.
func (t *Thread) SetFlag(name string) {
	t.sim.flags[name] = true
	for _, o := range t.sim.threads {
		if o.state == stateBlocked && o.block == blockFlag {
			t.sim.wake(o)
		}
	}
}

// WaitFlag blocks until the named ad-hoc flag is raised. See SetFlag.
func (t *Thread) WaitFlag(name string) {
	for !t.sim.flags[name] {
		t.blockOn(blockFlag)
	}
}

// WaitFlagOrQuit blocks until the flag is raised or the simulation
// requests a stop; it reports whether the flag was actually raised.
// Daemon service loops use it so Shutdown can drain them.
func (t *Thread) WaitFlagOrQuit(name string) bool {
	for !t.sim.flags[name] {
		if t.quit {
			return false
		}
		t.blockOn(blockFlag)
	}
	return true
}

// ClearFlag lowers an ad-hoc flag (condition-variable style reuse by
// custom task queues). Like SetFlag, it emits no trace operation.
func (t *Thread) ClearFlag(name string) {
	delete(t.sim.flags, name)
}

// SetDaemon marks the thread as a daemon: when it blocks on an ad-hoc
// flag it neither prevents quiescence nor counts as deadlocked — it is a
// service loop waiting for future work (a custom task queue worker).
// Daemons observe Quit requests through Quitting and must exit then.
func (t *Thread) SetDaemon(on bool) { t.daemon = on }

// Quitting reports whether the simulation asked loops to drain and stop.
func (t *Thread) Quitting() bool { return t.quit }
