package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"droidracer/internal/hb"
	"droidracer/internal/paper"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// coEnabledTrace has a purely single-threaded race between two UI event
// handlers (no multithreaded conflict at all).
func coEnabledTrace() *trace.Trace {
	return trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.Enable(1, "onClick1"),
		trace.Enable(1, "onClick2"),
		trace.LoopOnQ(1),
		trace.Post(1, "onClick1", 1),
		trace.Begin(1, "onClick1"),
		trace.Write(1, "x"),
		trace.End(1, "onClick1"),
		trace.Post(1, "onClick2", 1),
		trace.Begin(1, "onClick2"),
		trace.Write(1, "x"),
		trace.End(1, "onClick2"),
	})
}

// postSyncTrace synchronizes a cross-thread hand-off purely through an
// asynchronous post: the background thread writes, then posts a task that
// reads on the main thread. Correct under DroidRacer; no locks involved.
func postSyncTrace() *trace.Trace {
	return trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Write(2, "x"),
		trace.Post(2, "show", 1),
		trace.Begin(1, "show"),
		trace.Read(1, "x"),
		trace.End(1, "show"),
	})
}

// fifoTrace has two tasks FIFO-ordered by same-source posts; their writes
// are ordered under DroidRacer.
func fifoTrace() *trace.Trace {
	return trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Post(2, "a", 1),
		trace.Post(2, "b", 1),
		trace.Begin(1, "a"),
		trace.Write(1, "x"),
		trace.End(1, "a"),
		trace.Begin(1, "b"),
		trace.Write(1, "x"),
		trace.End(1, "b"),
	})
}

// lockedTrace protects a location with a lock across two threads.
func lockedTrace() *trace.Trace {
	return trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Acquire(1, "l"),
		trace.Write(1, "x"),
		trace.Release(1, "l"),
		trace.Acquire(2, "l"),
		trace.Write(2, "x"),
		trace.Release(2, "l"),
	})
}

// droidRacerLocs runs the full analysis and returns its racy locations.
func droidRacerLocs(t *testing.T, tr *trace.Trace) map[trace.Loc]bool {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	locs := make(map[trace.Loc]bool)
	for _, r := range race.NewDetector(hb.Build(info, hb.DefaultConfig())).Detect() {
		locs[r.Loc] = true
	}
	return locs
}

func TestAllReturnsFourDetectors(t *testing.T) {
	ds := All()
	if len(ds) != 4 {
		t.Fatalf("All() returned %d detectors", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if d.Name() == "" {
			t.Error("empty detector name")
		}
		names[d.Name()] = true
	}
	if len(names) != 4 {
		t.Fatalf("duplicate detector names: %v", names)
	}
}

func TestPureMTMissesSingleThreadedRace(t *testing.T) {
	tr := coEnabledTrace()
	if got := droidRacerLocs(t, tr); !got["x"] {
		t.Fatal("full analysis should flag x")
	}
	if fs := NewPureMT().Detect(tr); len(fs) != 0 {
		t.Fatalf("pure-mt reported %v on a single-threaded race (should be a false negative)", fs)
	}
}

func TestPureMTFalsePositiveOnPostSync(t *testing.T) {
	tr := postSyncTrace()
	if got := droidRacerLocs(t, tr); len(got) != 0 {
		t.Fatal("full analysis should accept the post-synchronized hand-off")
	}
	fs := NewPureMT().Detect(tr)
	if len(fs) != 1 || fs[0].Loc != "x" {
		t.Fatalf("pure-mt findings = %v, want the x false positive", fs)
	}
}

func TestPureMTFindsMultithreadedRace(t *testing.T) {
	tr := paper.Figure4()
	fs := NewPureMT().Detect(tr)
	if len(fs) != 1 || fs[0].Loc != "DwFileAct-obj" {
		t.Fatalf("findings = %v, want DwFileAct-obj", fs)
	}
}

func TestPureMTRespectsLocksAndJoin(t *testing.T) {
	if fs := NewPureMT().Detect(lockedTrace()); len(fs) != 0 {
		t.Fatalf("lock-protected trace flagged: %v", fs)
	}
	joined := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.Fork(1, 2),
		trace.ThreadInit(2),
		trace.Write(2, "x"),
		trace.ThreadExit(2),
		trace.Join(1, 2),
		trace.Write(1, "x"),
	})
	if fs := NewPureMT().Detect(joined); len(fs) != 0 {
		t.Fatalf("fork/join-ordered trace flagged: %v", fs)
	}
}

func TestAsyncAsThreadsFalsePositiveOnFIFO(t *testing.T) {
	tr := fifoTrace()
	if got := droidRacerLocs(t, tr); len(got) != 0 {
		t.Fatal("full analysis should order FIFO tasks")
	}
	fs := NewAsyncAsThreads().Detect(tr)
	if len(fs) != 1 || fs[0].Loc != "x" {
		t.Fatalf("async-as-threads findings = %v, want the FIFO false positive", fs)
	}
}

func TestAsyncAsThreadsSeesPostOrdering(t *testing.T) {
	// The post edge itself is modeled (task inherits poster's clock), so
	// the post-synchronized hand-off is accepted.
	if fs := NewAsyncAsThreads().Detect(postSyncTrace()); len(fs) != 0 {
		t.Fatalf("post-synchronized hand-off flagged: %v", fs)
	}
}

func TestAsyncAsThreadsFindsCoEnabledRace(t *testing.T) {
	fs := NewAsyncAsThreads().Detect(coEnabledTrace())
	if len(fs) != 1 || fs[0].Loc != "x" {
		t.Fatalf("findings = %v, want x", fs)
	}
}

func TestEventOnlyFalsePositiveAcrossThreads(t *testing.T) {
	tr := lockedTrace()
	if got := droidRacerLocs(t, tr); len(got) != 0 {
		t.Fatal("full analysis should accept the locked trace")
	}
	fs := NewEventOnly().Detect(tr)
	if len(fs) != 1 || fs[0].Loc != "x" {
		t.Fatalf("event-only findings = %v, want the cross-thread false positive", fs)
	}
}

func TestEventOnlyFindsSingleThreadedRace(t *testing.T) {
	fs := NewEventOnly().Detect(coEnabledTrace())
	if len(fs) != 1 || fs[0].Loc != "x" {
		t.Fatalf("findings = %v, want x", fs)
	}
}

func TestEventOnlyMalformedTrace(t *testing.T) {
	bad := trace.FromOps([]trace.Op{trace.Begin(1, "p")})
	if fs := NewEventOnly().Detect(bad); fs != nil {
		t.Fatalf("findings on malformed trace: %v", fs)
	}
}

func TestLocksetAcceptsConsistentLocking(t *testing.T) {
	if fs := NewLockset().Detect(lockedTrace()); len(fs) != 0 {
		t.Fatalf("consistently locked trace flagged: %v", fs)
	}
}

func TestLocksetFalsePositiveOnEventOrdering(t *testing.T) {
	// A write-write hand-off ordered purely by a post: race free under
	// DroidRacer, but the location is never consistently locked, so the
	// lockset analysis flags it. (A write-then-read hand-off lands in
	// Eraser's read-shared state and is deliberately not reported.)
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Write(2, "x"),
		trace.Post(2, "show", 1),
		trace.Begin(1, "show"),
		trace.Write(1, "x"),
		trace.End(1, "show"),
	})
	if got := droidRacerLocs(t, tr); len(got) != 0 {
		t.Fatal("full analysis should accept the post-ordered writes")
	}
	fs := NewLockset().Detect(tr)
	if len(fs) != 1 || fs[0].Loc != "x" {
		t.Fatalf("lockset findings = %v, want the ordering false positive", fs)
	}
}

func TestLocksetWriteThenReadShareNotReported(t *testing.T) {
	// Eraser's state machine: exclusive-write then cross-thread read lands
	// in the read-shared state and is not reported.
	if fs := NewLockset().Detect(postSyncTrace()); len(fs) != 0 {
		t.Fatalf("read-shared hand-off flagged: %v", fs)
	}
}

func TestLocksetSharedReadOnlyNotReported(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Write(1, "x"), // exclusive
		trace.Read(1, "x"),
		trace.Read(2, "x"), // shared, never written after sharing
		trace.Read(1, "x"),
	})
	if fs := NewLockset().Detect(tr); len(fs) != 0 {
		t.Fatalf("read-shared location flagged: %v", fs)
	}
}

func TestLocksetInconsistentLockReported(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Acquire(1, "l"),
		trace.Write(1, "x"),
		trace.Release(1, "l"),
		trace.Write(2, "x"), // no lock held
	})
	fs := NewLockset().Detect(tr)
	if len(fs) != 1 || fs[0].Loc != "x" {
		t.Fatalf("findings = %v, want x", fs)
	}
}

// TestQuickBaselinesDeterministic checks that every baseline produces the
// same findings on repeated runs over the same random trace.
func TestQuickBaselinesDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := semantics.RandomTrace(rng, semantics.DefaultGenConfig())
		for _, d := range All() {
			a, b := d.Detect(tr), d.Detect(tr)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPureMTSoundOnPlainThreadTraces checks agreement with the full
// analysis on traces without any queue threads, where the relations
// coincide (locks, fork/join, program order only).
func TestQuickPureMTSoundOnPlainThreadTraces(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := semantics.DefaultGenConfig()
		cfg.PQueue = 0 // forked threads never attach queues
		tr0 := semantics.RandomTrace(rng, cfg)
		// Strip the generator's built-in queue thread t1 by dropping its
		// operations and any posts, keeping a pure multithreaded trace.
		tr := trace.New(tr0.Len())
		for _, op := range tr0.Ops() {
			if op.Thread == 1 || op.Kind == trace.OpPost || op.Kind == trace.OpEnable {
				continue
			}
			if op.Kind == trace.OpFork && op.Other == 1 {
				continue
			}
			tr.Append(op)
		}
		full := droidRacerLocsQuiet(tr)
		if full == nil {
			return true // malformed after stripping; skip
		}
		got := Locs(NewPureMT().Detect(tr))
		// PureMT reports one representative per location and supersedes
		// read sets on writes, so it may under-report pairs but must not
		// report a location the full analysis considers race free.
		for loc := range got {
			if !full[loc] {
				t.Logf("seed %d: pure-mt flagged %s, full analysis did not", seed, loc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func droidRacerLocsQuiet(tr *trace.Trace) map[trace.Loc]bool {
	info, err := trace.Analyze(tr)
	if err != nil {
		return nil
	}
	locs := make(map[trace.Loc]bool)
	for _, r := range race.NewDetector(hb.Build(info, hb.DefaultConfig())).Detect() {
		locs[r.Loc] = true
	}
	return locs
}
