package baseline

import (
	"droidracer/internal/trace"
	"droidracer/internal/vc"
)

// AsyncAsThreads simulates asynchronous calls through additional threads
// (§7: such simulations "do not scale or produce many false positives"):
// every posted task becomes its own vector-clock context, created from the
// poster's clock at the post. The identity of the queue thread is ignored,
// so two tasks dispatched sequentially on one thread appear concurrent
// unless their posts are ordered — FIFO and run-to-completion orderings
// are lost.
type AsyncAsThreads struct{}

// NewAsyncAsThreads returns the async-as-threads baseline detector.
func NewAsyncAsThreads() *AsyncAsThreads { return &AsyncAsThreads{} }

// Name implements Detector.
func (*AsyncAsThreads) Name() string { return "async-as-threads" }

// Detect implements Detector.
func (d *AsyncAsThreads) Detect(tr *trace.Trace) []Finding {
	s := newMTState()

	// Context IDs: threads keep their IDs; tasks are numbered beyond the
	// largest thread ID seen in the trace.
	maxThread := trace.ThreadID(0)
	for _, op := range tr.Ops() {
		if op.Thread > maxThread {
			maxThread = op.Thread
		}
		if op.Other > maxThread {
			maxThread = op.Other
		}
	}
	nextTask := vc.ID(maxThread) + 1
	taskID := make(map[trace.TaskID]vc.ID)
	idOfTask := func(p trace.TaskID) vc.ID {
		id, ok := taskID[p]
		if !ok {
			id = nextTask
			nextTask++
			taskID[p] = id
		}
		return id
	}

	// current maps each real thread to the context executing on it: the
	// running task's context, or the thread's own.
	current := make(map[trace.ThreadID]vc.ID)
	ctx := func(t trace.ThreadID) vc.ID {
		if id, ok := current[t]; ok {
			return id
		}
		return vc.ID(t)
	}

	for i, op := range tr.Ops() {
		me := ctx(op.Thread)
		switch op.Kind {
		case trace.OpFork:
			c := s.clock(me)
			s.pending[vc.ID(op.Other)] = c.Copy()
			c.Tick(me)
		case trace.OpThreadInit:
			s.clock(me)
		case trace.OpThreadExit:
			s.exited[me] = s.clock(me).Copy()
		case trace.OpJoin:
			if ec, ok := s.exited[vc.ID(op.Other)]; ok {
				s.clock(me).Join(ec)
			}
		case trace.OpPost:
			// The task is a freshly spawned "thread": it inherits the
			// poster's clock.
			c := s.clock(me)
			s.pending[idOfTask(op.Task)] = c.Copy()
			c.Tick(me)
		case trace.OpBegin:
			current[op.Thread] = idOfTask(op.Task)
			s.clock(current[op.Thread])
		case trace.OpEnd:
			delete(current, op.Thread)
		case trace.OpAcquire:
			if rel, ok := s.lockRel[op.Lock]; ok {
				s.clock(me).Join(rel)
			}
		case trace.OpRelease:
			c := s.clock(me)
			s.lockRel[op.Lock] = c.Copy()
			c.Tick(me)
		case trace.OpRead, trace.OpWrite:
			s.record(me, op, i)
		}
	}
	return s.findings()
}
