package hb

import (
	"droidracer/internal/bitset"
	"droidracer/internal/trace"
)

// addBaseEdges installs every non-recursive rule instance: program order
// (NO-Q-PO and ASYNC-PO), ENABLE-ST/MT, POST-ST/MT, ATTACH-Q-MT, FORK,
// JOIN, and LOCK. The recursive rules (FIFO, NOPRE, TRANS-ST, TRANS-MT)
// run in the fixpoint loop.
func (g *Graph) addBaseEdges() {
	tr := g.info.Trace()

	// Gather per-thread operation lists and per-thread bookkeeping in one
	// pass.
	opsOn := make(map[trace.ThreadID][]int)
	initOf := make(map[trace.ThreadID]int) // threadinit op per thread
	exitOf := make(map[trace.ThreadID]int) // threadexit op per thread
	postsTo := make(map[trace.ThreadID][]int)
	acquires := make(map[trace.LockID][]int)
	releases := make(map[trace.LockID][]int)
	for i, op := range tr.Ops() {
		opsOn[op.Thread] = append(opsOn[op.Thread], i)
		switch op.Kind {
		case trace.OpThreadInit:
			initOf[op.Thread] = i
		case trace.OpThreadExit:
			exitOf[op.Thread] = i
		case trace.OpPost:
			postsTo[op.Other] = append(postsTo[op.Other], i)
		case trace.OpAcquire:
			acquires[op.Lock] = append(acquires[op.Lock], i)
		case trace.OpRelease:
			releases[op.Lock] = append(releases[op.Lock], i)
		}
	}

	// Program order. On a thread with a task queue, program order holds up
	// to and including loopOnQ (NO-Q-PO) and within each asynchronous task
	// (ASYNC-PO). loopOnQ itself satisfies the NO-Q-PO antecedent, so it
	// is ordered before every later operation on its thread; edges from it
	// to each post-loop region entry (task begins and out-of-task
	// operations) make that reachable transitively.
	for t, ops := range opsOn {
		loop := g.info.LoopIdx(t)
		for k := 0; k+1 < len(ops); k++ {
			if !g.check() {
				return
			}
			a, b := ops[k], ops[k+1]
			switch {
			case g.cfg.WholeThreadPO, loop < 0, a <= loop:
				g.addST(g.nodeOf[a], g.nodeOf[b], RuleNoQPO)
			default:
				if ta := g.info.Task(a); ta != "" && ta == g.info.Task(b) {
					g.addST(g.nodeOf[a], g.nodeOf[b], RuleAsyncPO)
				}
			}
		}
		if loop >= 0 && !g.cfg.WholeThreadPO {
			loopNode := g.nodeOf[loop]
			for _, c := range ops {
				if c <= loop {
					continue
				}
				task := g.info.Task(c)
				if task == "" || g.info.BeginIdx(task) == c {
					g.addST(loopNode, g.nodeOf[c], RuleNoQPO)
				}
			}
		}
	}

	// ENABLE-ST / ENABLE-MT and POST-ST / POST-MT.
	for i, op := range tr.Ops() {
		if op.Kind != trace.OpPost {
			continue
		}
		if !g.check() {
			return
		}
		if g.cfg.EnableEdges {
			if e := g.info.EnableIdx(op.Task); e >= 0 {
				g.addDirected(e, i, RuleEnableST, RuleEnableMT)
			}
		}
		if b := g.info.BeginIdx(op.Task); b >= 0 {
			g.addDirected(i, b, RulePostST, RulePostMT)
		}
	}

	// ATTACH-Q-MT: a post to a thread happens after the thread attached
	// its queue. Same-thread posts are already covered by program order.
	for t, posts := range postsTo {
		a := g.info.AttachIdx(t)
		if a < 0 {
			continue
		}
		for _, q := range posts {
			if tr.Op(q).Thread != t {
				g.addMT(g.nodeOf[a], g.nodeOf[q], RuleAttachQMT)
			}
		}
	}

	// FORK and JOIN.
	for i, op := range tr.Ops() {
		switch op.Kind {
		case trace.OpFork:
			if ti, ok := initOf[op.Other]; ok {
				g.addMT(g.nodeOf[i], g.nodeOf[ti], RuleFork)
			}
		case trace.OpJoin:
			if te, ok := exitOf[op.Other]; ok {
				g.addMT(g.nodeOf[te], g.nodeOf[i], RuleJoin)
			}
		}
	}

	// LOCK: release(t,l) ≼mt acquire(t′,l) for t ≠ t′. The naive
	// combination (Config.Naive) also orders same-thread pairs, which is
	// exactly the spurious ordering the decomposed relation avoids.
	for l, rels := range releases {
		acqs := acquires[l]
		for _, r := range rels {
			if !g.check() {
				return
			}
			for _, a := range acqs {
				if a < r {
					continue
				}
				switch {
				case tr.Op(r).Thread != tr.Op(a).Thread:
					g.addMT(g.nodeOf[r], g.nodeOf[a], RuleLock)
				case g.cfg.Naive:
					g.addST(g.nodeOf[r], g.nodeOf[a], RuleLock)
				}
			}
		}
	}
}

// addDirected records an edge between the operations at trace indices a
// and b, choosing st or mt (and the corresponding rule attribution) by
// whether they execute on the same thread.
func (g *Graph) addDirected(a, b int, stRule, mtRule Rule) {
	tr := g.info.Trace()
	na, nb := g.nodeOf[a], g.nodeOf[b]
	if tr.Op(a).Thread == tr.Op(b).Thread {
		g.addST(na, nb, stRule)
	} else {
		g.addMT(na, nb, mtRule)
	}
}

// fixpoint alternates the transitivity closures with the recursive FIFO
// and NOPRE rules until nothing changes. All edges point forward in trace
// order (backward instances are rejected by addST/addMT), so the relation
// stays acyclic and the loop terminates.
//
// Evaluation is semi-naive: `dirty` holds the nodes whose ≼ rows changed
// in the previous round, and a node is reprocessed only when its own row
// changed or it can reach a dirty node. On large traces most rounds touch
// a handful of rows, which cuts the cubic closure cost substantially
// (TestQuickEngineMatchesReference anchors the equivalence with a naive
// rule-by-rule fixpoint).
func (g *Graph) fixpoint() {
	n := len(g.nodes)
	dirty := bitset.New(n)
	for i := 0; i < n; i++ {
		dirty.Set(i)
	}
	for dirty.Any() && g.check() {
		next := bitset.New(n)
		g.closeST(dirty, next)
		if !g.cfg.STOnly {
			g.closeMT(dirty, next)
		}
		if g.cfg.FIFO || g.cfg.NoPre {
			g.applyTaskRules(next)
		}
		dirty = next
	}
}

// needsWork reports whether node i must be reprocessed: its row changed
// (it is dirty) or some node it reaches is dirty.
func needsWork(i int, row *bitset.Set, dirty, next *bitset.Set) bool {
	return dirty.Has(i) || next.Has(i) || row.IntersectsWith(dirty) || row.IntersectsWith(next)
}

// closeST computes TRANS-ST: the transitive closure of st alone. Edges
// only point forward, so one descending pass suffices: when node i is
// processed, the rows of all its successors are already closed. Nodes
// whose successors did not change are skipped.
func (g *Graph) closeST(dirty, next *bitset.Set) {
	for i := len(g.nodes) - 1; i >= 0; i-- {
		if !g.check() {
			return
		}
		row := g.st[i]
		if !needsWork(i, row, dirty, next) {
			continue
		}
		before := 0
		if g.ck != nil {
			before = row.Count()
		}
		changed := false
		for k := row.NextSet(i + 1); k != -1; k = row.NextSet(k + 1) {
			if row.UnionWith(g.st[k]) {
				changed = true
			}
		}
		if changed {
			next.Set(i)
			if g.ck != nil {
				g.edges += row.Count() - before
			}
		}
	}
}

// closeMT computes one chained application of TRANS-MT: for nodes i, j on
// different threads with some k such that i ≼ k and k ≼ j, record
// i ≼mt j. Under Config.Naive the different-thread restriction is dropped.
// Processing descends so that successor rows extended in this pass are
// visible, which speeds convergence without changing the fixpoint.
func (g *Graph) closeMT(dirty, next *bitset.Set) {
	n := len(g.nodes)
	row := bitset.New(n) // combined ≼ row of node i
	acc := bitset.New(n) // union of ≼ rows of i's successors
	for i := n - 1; i >= 0; i-- {
		if !g.check() {
			return
		}
		row.Reset()
		row.UnionWith(g.st[i])
		row.UnionWith(g.mt[i])
		if !row.Any() {
			continue
		}
		if !needsWork(i, row, dirty, next) {
			continue
		}
		acc.Reset()
		for k := row.NextSet(i + 1); k != -1; k = row.NextSet(k + 1) {
			acc.UnionWith(g.st[k])
			acc.UnionWith(g.mt[k])
		}
		ti := g.nodes[i].Thread
		for j := acc.NextSet(i + 1); j != -1; j = acc.NextSet(j + 1) {
			if row.Has(j) || g.mt[i].Has(j) {
				continue
			}
			if g.cfg.Naive || g.nodes[j].Thread != ti {
				g.mt[i].Set(j)
				g.edges++
				next.Set(i)
			}
		}
	}
}

// reachLE reports node a ≼ node b under the current (partially closed)
// relation, treating ≼ as reflexive.
func (g *Graph) reachLE(a, b int) bool {
	return a == b || g.st[a].Has(b) || g.mt[a].Has(b)
}

// applyTaskRules applies FIFO and NOPRE: the rules ordering the end of one
// asynchronous task before the begin of a later task on the same thread.
// Nodes that gain edges are marked in next.
func (g *Graph) applyTaskRules(next *bitset.Set) {
	tr := g.info.Trace()

	// Tasks per queue thread, in execution (begin) order.
	tasksOn := make(map[trace.ThreadID][]trace.TaskID)
	for _, op := range tr.Ops() {
		if op.Kind == trace.OpBegin {
			tasksOn[op.Thread] = append(tasksOn[op.Thread], op.Task)
		}
	}

	// For NOPRE: taskReach[p] is the union of the ≼ rows of all nodes in
	// task p, i.e. the set of nodes some operation of p happens before.
	var taskReach map[trace.TaskID]*bitset.Set
	if g.cfg.NoPre {
		taskReach = make(map[trace.TaskID]*bitset.Set)
		for i := range g.nodes {
			p := g.nodes[i].Task
			if p == "" {
				continue
			}
			r, ok := taskReach[p]
			if !ok {
				r = bitset.New(len(g.nodes))
				taskReach[p] = r
			}
			r.UnionWith(g.st[i])
			r.UnionWith(g.mt[i])
		}
	}

	for _, tasks := range tasksOn {
		for x := 0; x < len(tasks); x++ {
			if !g.check() {
				return
			}
			p1 := tasks[x]
			endIdx := g.info.EndIdx(p1)
			if endIdx < 0 {
				continue // trace ends inside p1
			}
			endN := g.nodeOf[endIdx]
			for y := x + 1; y < len(tasks); y++ {
				p2 := tasks[y]
				beginN := g.nodeOf[g.info.BeginIdx(p2)]
				if g.st[endN].Has(beginN) {
					continue
				}
				q1, q2 := g.info.PostIdx(p1), g.info.PostIdx(p2)
				if g.cfg.FIFO && fifoCompatible(tr.Op(q1), tr.Op(q2)) &&
					g.reachLE(g.nodeOf[q1], g.nodeOf[q2]) {
					if g.addST(endN, beginN, RuleFIFO) {
						next.Set(endN)
					}
					continue
				}
				if g.cfg.NoPre {
					// ∃ αk ∈ task p1 with αk ≼ post(p2). The post may itself
					// execute inside p1 (αk = post(p2), ≼ reflexive).
					inP1 := g.info.Task(q2) == p1
					if !inP1 {
						if r := taskReach[p1]; r != nil && r.Has(g.nodeOf[q2]) {
							inP1 = true
						}
					}
					if inP1 && g.addST(endN, beginN, RuleNoPre) {
						next.Set(endN)
					}
				}
			}
		}
	}
}

// fifoCompatible implements the FIFO side conditions for delayed posts
// (§4.2) and the front-of-queue extension. Given ordered posts β1 ≼ β2 to
// the same thread, the dispatch of β1's task before β2's is guaranteed
// when:
//   - β2 is not a front-of-queue post (a front post overtakes the queue), and
//   - β1 is not delayed (it enqueues immediately, ahead of β2), or both are
//     delayed with timeout δ1 ≤ δ2.
func fifoCompatible(b1, b2 trace.Op) bool {
	if b2.Front {
		return false
	}
	if b1.Delayed {
		return b2.Delayed && b1.Delay <= b2.Delay
	}
	return true
}
