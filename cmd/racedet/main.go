// Command racedet is the offline Race Detector component of DroidRacer
// (§5): it reads an execution trace in the textual core-language format,
// computes the happens-before relation, and reports classified data races.
//
// Usage:
//
//	racedet [-all] [-stats] [-naive] [-no-enable] [-no-fifo]
//	        [-deadline 5s] [-max-nodes N] [-no-degrade]
//	        [-parallelism N] [trace.txt]
//	racedet -campaign "Paper Music Player" -state DIR [-k N] [-seed N]
//	racedet -resume DIR
//	racedet -submit URL [-deadline 30s] [-client-id ID] [-trace-out FILE] [trace.txt]
//	racedet -trace ID URL_OR_FILE...
//	racedet -flood URL [-requests N] [-rps N] [-dup 0.5] [-corpus N]
//	        [-flood-apps "Music Player,..."] [-seed N] [-client-id ID]
//	racedet -fsck STATEDIR [-spool DIR] [-repair]
//
// With no file argument the trace is read from standard input. Under
// -deadline/-max-nodes the analysis is budgeted: when the budget runs
// out it degrades to the pure multithreaded baseline detector (or, with
// -no-degrade, exits with the partial results printed and a structured
// budget error).
//
// Submit mode (-submit URL) posts the trace to a racedetd ingestion
// endpoint instead of analyzing it locally: retryable refusals (429,
// 503, transport errors) are retried with jittered backoff honoring
// Retry-After, under a content-derived idempotency key that is stable
// across attempts — resubmitting after a timeout or daemon crash never
// duplicates work. Exit status 0 for accepted/done submissions, 1 for
// quarantined inputs or exhausted retries. Every submission mints a
// W3C traceparent so the fleet records a distributed trace under the
// printed trace ID; -trace-out FILE additionally writes the client-side
// span as JSON, mergeable into `racedet -trace`.
//
// Trace mode (-trace ID SOURCE...) stitches one distributed trace back
// together: each SOURCE is either a process base URL (its
// /debug/traces/ID endpoint is queried — gateway and backends each hold
// their own fragment) or a local span-JSON file (such as a -trace-out
// file). The merged tree renders as a waterfall with per-hop and
// per-phase durations. Unreachable sources warn and are skipped; exit
// status 1 when no source knows the trace.
//
// Campaign mode (-campaign/-resume) runs a restartable exploration
// campaign over an application model, journaling DFS progress and
// per-test race results under the -state directory. A campaign killed
// mid-run — crash, OOM, SIGKILL — is resumed with -resume DIR and
// produces the same race report as an uninterrupted run. The race
// report goes to stdout; progress and resume statistics go to stderr,
// so reports diff cleanly across kill/resume schedules.
//
// Fsck mode (-fsck STATEDIR) runs the offline storage-integrity scanner
// over a racedetd state directory (and, with -spool DIR, its spool):
// journal checksums and sequence continuity, spool and quarantine
// content digests, stale staging files. Without -repair it only prints
// the repair plan. Exit status: 0 when the directories are clean (or
// every finding was repaired), 1 when findings remain, 2 when the scan
// itself failed — CI can gate on it directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"droidracer"
	"droidracer/internal/apps"
	"droidracer/internal/core"
	"droidracer/internal/flood"
	"droidracer/internal/fsck"
	"droidracer/internal/jobs"
	"droidracer/internal/obs"
	"droidracer/internal/report"
	"droidracer/internal/server"
)

func main() {
	engine := flag.String("engine", "", "analysis engine: graph (default; supports -dot/-explain/-minimize) or stream (vector-clock replay, no graph, linear memory); with -submit, forwarded as X-Analysis-Engine")
	all := flag.Bool("all", false, "report every racing pair instead of one per location and category")
	stats := flag.Bool("stats", false, "print trace statistics and graph size")
	naive := flag.Bool("naive", false, "use the naive combination of multithreaded and event rules (ablation)")
	noEnable := flag.Bool("no-enable", false, "ignore enable operations (ablation)")
	noFIFO := flag.Bool("no-fifo", false, "drop the FIFO rule (ablation)")
	noValidate := flag.Bool("no-validate", false, "skip the Figure 5 semantic validation")
	explainFlag := flag.Bool("explain", false, "print a debugging explanation per race (chains, hints, near misses)")
	dotFile := flag.String("dot", "", "write the happens-before graph (transitive reduction) as Graphviz DOT to this file")
	minimizeFlag := flag.Bool("minimize", false, "print a minimized witness trace for the first reported race")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the analysis (0 = unlimited)")
	maxNodes := flag.Int("max-nodes", 0, "cap on happens-before graph nodes (0 = unlimited)")
	noDegrade := flag.Bool("no-degrade", false, "on budget exhaustion, fail with partial results instead of degrading to the pure-MT baseline")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for the happens-before closure and race scan (0 = GOMAXPROCS, 1 = serial)")
	phaseTimings := flag.Bool("phase-timings", false, "append a per-phase wall-clock timing table to the report")
	submitURL := flag.String("submit", "", "submit the trace to this racedetd ingestion URL instead of analyzing locally")
	clientID := flag.String("client-id", "", "rate-limit principal sent as X-Client-ID with -submit/-flood")
	traceOut := flag.String("trace-out", "", "with -submit, write the client-side span of the distributed trace to this JSON file")
	stitchID := flag.String("trace", "", "stitch and print the distributed trace with this ID from the /debug/traces sources (URLs or span-JSON files) given as arguments")
	floodURL := flag.String("flood", "", "flood this ingestion URL (a backend or the racedetgw gateway) with generated traces and print a JSON summary")
	floodRequests := flag.Int("requests", 100, "total submissions for -flood")
	floodRPS := flag.Float64("rps", 0, "target submissions per second for -flood (0 = unpaced)")
	floodDup := flag.Float64("dup", 0, "duplicate ratio in [0,1] for -flood: fraction of sends that repeat an earlier body")
	floodCorpus := flag.Int("corpus", 20, "distinct trace bodies to generate for -flood")
	floodApps := flag.String("flood-apps", "Music Player,Aard Dictionary,Messenger", "comma-separated Table 2 app models the -flood corpus draws from")
	fsckDir := flag.String("fsck", "", "scan this racedetd state directory for storage damage and print a repair plan")
	fsckSpool := flag.String("spool", "", "spool directory to digest-verify alongside -fsck")
	fsckRepair := flag.Bool("repair", false, "with -fsck, execute the repair plan instead of only printing it")
	campaignApp := flag.String("campaign", "", "run a restartable exploration campaign over this application model")
	stateDir := flag.String("state", "", "state directory for the campaign journal (with -campaign)")
	resumeDir := flag.String("resume", "", "resume the campaign journaled under this state directory")
	k := flag.Int("k", 0, "event-sequence bound for -campaign (0 = the app's default)")
	seed := flag.Int64("seed", 0, "scheduling seed for -campaign (0 = round-robin); also seeds the -flood corpus and jitter")
	flag.Parse()

	if *phaseTimings {
		// Attach a metrics consumer so the per-phase histogram mirror
		// runs and the timing table can show quantile columns.
		obs.MarkExporterAttached()
	}
	if *fsckDir != "" {
		runFsck(*fsckDir, *fsckSpool, *fsckRepair)
		return
	}
	if *campaignApp != "" || *resumeDir != "" {
		runCampaign(*campaignApp, *stateDir, *resumeDir, *k, *seed)
		return
	}
	if *stitchID != "" {
		runTrace(*stitchID, flag.Args())
		return
	}
	if *submitURL != "" {
		runSubmit(*submitURL, *clientID, *traceOut, *engine, *deadline)
		return
	}
	if *floodURL != "" {
		runFlood(*floodURL, *clientID, *floodApps, *floodRequests, *floodCorpus, *floodRPS, *floodDup, *seed)
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	parseStart := time.Now()
	tr, err := droidracer.ParseTrace(in)
	if err != nil {
		fatal(err)
	}
	parseDur := time.Since(parseStart)

	opts := droidracer.DefaultOptions()
	opts.Engine = *engine
	opts.Dedup = !*all
	opts.Validate = !*noValidate
	opts.HB.Naive = *naive
	opts.HB.EnableEdges = !*noEnable
	opts.HB.FIFO = !*noFIFO
	opts.Budget = droidracer.Budget{Wall: *deadline, MaxGraphNodes: *maxNodes}
	opts.DegradeOnBudget = !*noDegrade
	opts.Parallelism = *parallelism
	if opts.Parallelism == 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}

	partial := false
	res, err := droidracer.AnalyzeContext(context.Background(), tr, opts)
	if err != nil {
		be, ok := droidracer.AsBudgetError(err)
		if !ok || res == nil {
			fatal(err)
		}
		partial = true
		fmt.Fprintf(os.Stderr, "racedet: %v; reporting partial results\n", be)
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "racedet: degraded to the pure-MT baseline detector (%v)\n", res.DegradedReason)
	}
	if *stats {
		s := res.Stats
		fmt.Printf("trace: %d ops, %d fields, %d threads w/o queues, %d with, %d async tasks\n",
			s.Length, s.Fields, s.ThreadsNoQ, s.ThreadsQ, s.AsyncTasks)
		if res.Graph != nil {
			fmt.Printf("graph: %d nodes (%.1f%% of trace length)\n",
				res.Graph.NodeCount(), 100*float64(res.Graph.NodeCount())/float64(s.Length))
		}
	}
	if *dotFile != "" {
		if res.Graph == nil {
			fatal(fmt.Errorf("-dot: no happens-before graph (degraded result or -engine=stream)"))
		}
		f, err := os.Create(*dotFile)
		if err != nil {
			fatal(err)
		}
		if err := res.Graph.WriteDOT(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	for _, r := range res.Races {
		if *explainFlag && res.Graph != nil {
			fmt.Print(droidracer.Explain(res.Graph, r))
			continue
		}
		first, second := tr.Op(r.First), tr.Op(r.Second)
		fmt.Printf("%s: %v @%d vs %v @%d\n", r.Category, first, r.First, second, r.Second)
	}
	if len(res.Races) == 0 {
		fmt.Println("no data races detected")
		if *phaseTimings {
			printPhases(res, parseDur)
		}
		if partial {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%d race report(s)\n", len(res.Races))
	if *minimizeFlag && res.Graph == nil {
		fmt.Fprintln(os.Stderr, "racedet: -minimize needs the happens-before graph; rerun with -engine=graph")
	}
	if *minimizeFlag && res.Graph != nil {
		min, err := droidracer.Minimize(res.Trace, res.Races[0], opts.HB)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nminimized witness for the first race (%d -> %d ops):\n",
			res.Trace.Len(), min.Trace.Len())
		if err := droidracer.FormatTrace(os.Stdout, min.Trace); err != nil {
			fatal(err)
		}
	}
	if *phaseTimings {
		printPhases(res, parseDur)
	}
	if partial {
		os.Exit(1)
	}
}

// runSubmit is the -submit entry point: it reads the trace bytes (file
// argument or stdin) and posts them to a racedetd ingestion endpoint
// with the retrying client. A -deadline is forwarded as the
// X-Analysis-Deadline request header rather than applied locally.
//
// Each submission mints a trace context and sends it as the W3C
// traceparent header, which makes the fleet keep the distributed trace
// (client-sampled traces always commit); the trace ID prints to stderr
// so the operator can stitch it later with `racedet -trace`.
func runSubmit(url, clientID, traceOut, engine string, deadline time.Duration) {
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	body, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	sc := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	c := &server.Client{
		BaseURL:     strings.TrimSuffix(url, "/"),
		Deadline:    deadline,
		ClientID:    clientID,
		Engine:      engine,
		Seed:        time.Now().UnixNano(),
		Traceparent: sc.Traceparent(),
	}
	start := time.Now()
	resp, attempts, err := c.Submit(context.Background(), body)
	writeClientSpan(sc, url, traceOut, start, time.Since(start), len(attempts), err)
	fmt.Fprintf(os.Stderr, "racedet: trace %s\n", sc.TraceID)
	retried := attempts
	if n := len(retried); n > 0 {
		retried = retried[:n-1] // the last attempt is the terminal answer
	}
	for _, at := range retried {
		if at.Err != nil {
			fmt.Fprintf(os.Stderr, "racedet: submit attempt failed (%v); retrying in %v\n", at.Err, at.Wait)
		} else {
			fmt.Fprintf(os.Stderr, "racedet: submit refused (%d); retrying in %v\n", at.Code, at.Wait)
		}
	}
	if err != nil {
		// Terminal failure: replay the full attempt history so the
		// operator sees what each try got — status code, structured
		// rejection reason, and the backoff actually slept.
		fmt.Fprintf(os.Stderr, "racedet: submission failed after %d attempt(s):\n", len(attempts))
		for i, at := range attempts {
			fmt.Fprintf(os.Stderr, "  attempt %d: %s\n", i+1, formatAttempt(at))
		}
		fatal(err)
	}
	switch resp.Status {
	case server.StatusDone:
		fmt.Printf("job %s: done (%s, %d race(s), digest %s)\n", resp.Job, resp.Mode, resp.Races, resp.Digest)
	case server.StatusQuarantined:
		fmt.Printf("job %s: quarantined (%s)\n", resp.Job, resp.Reason)
		os.Exit(1)
	default:
		coalesced := ""
		if resp.Coalesced {
			coalesced = ", coalesced onto in-flight work"
		}
		fmt.Printf("job %s: %s%s\n", resp.Job, resp.Status, coalesced)
	}
}

// formatAttempt renders one submission attempt for the terminal-failure
// history: "HTTP 429 (rate-limited), slept 1s" or "transport error
// (connection refused)".
func formatAttempt(at server.Attempt) string {
	var b strings.Builder
	switch {
	case at.Err != nil:
		fmt.Fprintf(&b, "transport error (%v)", at.Err)
	case at.Reason != "":
		fmt.Fprintf(&b, "HTTP %d (%s)", at.Code, at.Reason)
	default:
		fmt.Fprintf(&b, "HTTP %d", at.Code)
	}
	if at.Wait > 0 {
		fmt.Fprintf(&b, ", slept %v", at.Wait)
	}
	return b.String()
}

// runFlood is the -flood entry point: generate a distinct-trace corpus
// from Table 2 app models, push it at the target rate with the
// duplicate-ratio knob, and print the JSON summary (latency histogram,
// per-code counts, accepted keys, cache hits).
func runFlood(url, clientID, appList string, requests, corpus int, rps, dup float64, seed int64) {
	var names []string
	for _, n := range strings.Split(appList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	bodies, err := flood.BuildCorpus(names, corpus, seed)
	if err != nil {
		fatal(err)
	}
	sum, err := flood.Run(context.Background(), flood.Config{
		BaseURL:  strings.TrimSuffix(url, "/"),
		Requests: requests,
		RPS:      rps,
		DupRatio: dup,
		Corpus:   bodies,
		Seed:     seed,
		ClientID: clientID,
	})
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fatal(err)
	}
}

// printPhases appends the -phase-timings table to the report: the trace
// parse, then the pipeline's per-phase spans in completion order, with
// p50/p90/p99 columns for phases the process-wide histogram has
// observed (a single analysis observes each phase once; a daemon
// embedding the pipeline accumulates a real distribution).
func printPhases(res *droidracer.Result, parse time.Duration) {
	// The file parse happens before the pipeline's collector exists;
	// mirror it into the process-wide histogram so its quantile cells
	// render like every other phase's.
	obs.NewPhases().Record("parse", parse)
	timings := append([]obs.PhaseTiming{{Phase: "parse", Duration: parse}}, res.Phases...)
	fmt.Print("\n" + report.PhaseTableQuantiles(timings, obs.PhaseQuantiles))
}

// runFsck is the -fsck entry point: scan the state (and optionally
// spool) directory, print the plan or the repairs, exit 0 clean /
// 1 findings / 2 scan failure.
func runFsck(state, spool string, repair bool) {
	rep, err := fsck.Run(fsck.Options{State: state, Spool: spool, Repair: repair, Log: os.Stderr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "racedet:", err)
		os.Exit(2)
	}
	switch {
	case rep.Clean():
		fmt.Printf("fsck: clean (%d journal record(s), %d spool bod%s, %d quarantined bod%s verified)\n",
			rep.JournalEntries, rep.SpoolChecked, plural(rep.SpoolChecked, "y", "ies"),
			rep.QuarantineChecked, plural(rep.QuarantineChecked, "y", "ies"))
	case repair && rep.Repaired():
		fmt.Printf("fsck: repaired %d finding(s); state directory is consistent\n", len(rep.Findings))
	default:
		fmt.Printf("fsck: %d finding(s); run with -repair to fix\n", len(rep.Findings))
		os.Exit(1)
	}
}

// runCampaign is the -campaign/-resume entry point: it builds (or
// rebuilds from the journal header) the campaign for an app model and
// runs it under the state directory. The sorted race report prints to
// stdout; everything stateful (resume counts, partial-progress notes)
// prints to stderr.
func runCampaign(appName, stateDir, resumeDir string, k int, seed int64) {
	switch {
	case appName != "" && resumeDir != "":
		fatal(fmt.Errorf("-campaign and -resume are mutually exclusive"))
	case appName != "" && stateDir == "":
		fatal(fmt.Errorf("-campaign requires -state DIR"))
	case resumeDir != "":
		stateDir = resumeDir
		// The journal header identifies the campaign; the original
		// bounds override any flags given here.
		name, eopts, err := jobs.Header(resumeDir)
		if err != nil {
			fatal(err)
		}
		appName, k, seed = name, eopts.MaxEvents, eopts.Seed
	}
	app, err := apps.New(appName)
	if err != nil {
		fatal(err)
	}
	explore := app.Explore()
	explore.MaxTests = 0 // campaigns run the DFS to its bound
	if k > 0 {
		explore.MaxEvents = k
	}
	explore.Seed = seed
	c := jobs.Campaign{
		Name:    appName,
		Factory: apps.Factory(app),
		Explore: explore,
		Analyze: core.DefaultOptions(),
	}
	res, err := jobs.RunCampaign(context.Background(), c, stateDir)
	if err != nil {
		if res == nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "racedet: campaign checkpointed mid-run (%v); resume with -resume %s\n", err, stateDir)
	}
	if res.Resumed {
		fmt.Fprintf(os.Stderr, "racedet: resumed %d journaled test(s), explored %d new sequence(s)\n",
			res.ResumedTests, res.SequencesExplored)
	}
	if res.Recovered.Torn() {
		fmt.Fprintf(os.Stderr, "racedet: journal recovery discarded a torn tail (%d entr%s, %d bytes); that work was re-explored\n",
			res.Recovered.DiscardedEntries, plural(res.Recovered.DiscardedEntries, "y", "ies"), res.Recovered.DiscardedBytes)
	}
	for _, id := range res.Races {
		fmt.Printf("%s: %s (%s vs %s)\n", id.Category, id.Loc, id.First, id.Second)
	}
	s := res.Summary
	fmt.Printf("%d race(s) over %d test(s): %d multithreaded, %d co-enabled, %d delayed, %d cross-posted, %d unknown\n",
		len(res.Races), res.Tests, s.Multithreaded, s.CoEnabled, s.Delayed, s.CrossPosted, s.Unknown)
	if !res.Complete {
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "racedet:", err)
	os.Exit(1)
}
