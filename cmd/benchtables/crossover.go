package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Graph-versus-stream crossover table (-crossover): reduce the
// BenchmarkStreamEngine series of a `go test -json -bench` output to
// median ns/op per workload and engine and render the comparison CI
// appends to the bench artifact. The table keeps the crossover guidance
// in DESIGN.md §17 tied to measured numbers: a workload with no graph
// column is one the admission cost model rejects outright under the
// graph engine (the memory-bomb shape), so the stream column is the
// only way to analyze it at all.

// streamEnginePrefix is the benchmark family the crossover table reads;
// sub-benchmarks are named <workload>/<engine>.
const streamEnginePrefix = "BenchmarkStreamEngine/"

// runCrossover parses the bench output at path and writes the crossover
// table to w. Missing engine columns render as dashes rather than
// erroring — the bomb workload never has a graph series.
func runCrossover(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := parseBench(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	med := median(samples)

	byWorkload := make(map[string]map[string]float64)
	var workloads []string
	for name, ns := range med {
		rest, ok := strings.CutPrefix(name, streamEnginePrefix)
		if !ok {
			continue
		}
		slash := strings.LastIndexByte(rest, '/')
		if slash < 0 {
			continue
		}
		workload, engine := rest[:slash], rest[slash+1:]
		if byWorkload[workload] == nil {
			byWorkload[workload] = make(map[string]float64)
			workloads = append(workloads, workload)
		}
		byWorkload[workload][engine] = ns
	}
	if len(workloads) == 0 {
		return fmt.Errorf("%s: no %s results", path, strings.TrimSuffix(streamEnginePrefix, "/"))
	}
	sort.Strings(workloads)

	fmt.Fprintln(w, "Graph-vs-stream crossover (median ns/op)")
	fmt.Fprintf(w, "%-24s %14s %14s %14s\n", "workload", "graph", "stream", "graph/stream")
	cell := func(ns float64, ok bool) string {
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.0f", ns)
	}
	for _, workload := range workloads {
		g, gok := byWorkload[workload]["graph"]
		s, sok := byWorkload[workload]["stream"]
		ratio := "-"
		if gok && sok && s > 0 {
			ratio = fmt.Sprintf("%.1fx", g/s)
		}
		fmt.Fprintf(w, "%-24s %14s %14s %14s\n", workload, cell(g, gok), cell(s, sok), ratio)
	}
	fmt.Fprintln(w, "\nWorkloads without a graph column are rejected at admission under the")
	fmt.Fprintln(w, "graph engine's quadratic cost model; the stream engine's linear model")
	fmt.Fprintln(w, "admits them (see DESIGN.md §17 for when to pick which engine).")
	return nil
}
