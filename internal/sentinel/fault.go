package sentinel

import (
	"os"
	"strconv"
	"strings"
	"sync"
)

// EnvSentinelFault arms deterministic resource faults for chaos tests,
// a comma-separated clause list:
//
//	brownout[:N[-M]]   force the sampler's reading above the watermark
//	                   on hits N through M (default 1-1), driving a
//	                   deterministic brownout crossing and recovery
//	child-oom          the isolated worker allocates unboundedly after
//	                   parsing, dying against its rlimit for real
//	child-hang         the isolated worker stalls forever, exercising
//	                   the parent's wall watchdog
//	child-panic        the isolated worker panics mid-analysis
//
// e.g. DROIDRACER_SENTINEL_FAULT=brownout:2-6 forces samples 2..6 high.
// Production pays one environment lookup per sample / worker start when
// the variable is unset.
const EnvSentinelFault = "DROIDRACER_SENTINEL_FAULT"

var (
	faultMu   sync.Mutex
	faultHits = map[string]int{}
)

// forcedBrownout reports whether this sampler hit falls inside an armed
// brownout window. It consumes one hit.
func forcedBrownout() bool {
	spec := os.Getenv(EnvSentinelFault)
	if spec == "" {
		return false
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		name, window, _ := strings.Cut(clause, ":")
		if name != "brownout" {
			continue
		}
		first, last := 1, 1
		if window != "" {
			lo, hi, ranged := strings.Cut(window, "-")
			if n, err := strconv.Atoi(lo); err == nil && n > 0 {
				first, last = n, n
			}
			if ranged {
				if m, err := strconv.Atoi(hi); err == nil && m >= first {
					last = m
				}
			}
		}
		faultMu.Lock()
		faultHits["brownout"]++
		hit := faultHits["brownout"]
		faultMu.Unlock()
		return hit >= first && hit <= last
	}
	return false
}

// childFault returns the armed worker-side fault ("oom", "hang",
// "panic"), or "" when none is.
func childFault() string {
	spec := os.Getenv(EnvSentinelFault)
	if spec == "" {
		return ""
	}
	for _, clause := range strings.Split(spec, ",") {
		switch strings.TrimSpace(clause) {
		case "child-oom":
			return "oom"
		case "child-hang":
			return "hang"
		case "child-panic":
			return "panic"
		}
	}
	return ""
}
