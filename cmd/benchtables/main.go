// Command benchtables regenerates the evaluation tables of the DroidRacer
// paper from the application models: Table 2 (trace statistics), Table 3
// (data races by category with true positives), the §6 performance
// figures (node-merging ratio, analysis time, trace-generation overhead),
// and the baseline-detector comparison backing the §7 discussion.
//
// Usage:
//
//	benchtables [-table 2|3|perf|overhead|baselines|triage|all] [-apps name,name]
//	benchtables -compare BENCH_5.json [-baseline BENCH_baseline.json] [-regress 20]
//	benchtables -crossover BENCH_5.json
//
// The second form is the CI benchmark-regression gate: it parses two
// `go test -json -bench` outputs, reduces each benchmark to its median
// ns/op, prints a benchstat-style comparison, and exits 1 when the
// geometric-mean slowdown exceeds -regress percent. A missing baseline
// file skips the gate with a warning.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"droidracer/internal/apps"
	"droidracer/internal/baseline"
	"droidracer/internal/eval"
	"droidracer/internal/paper"
	"droidracer/internal/report"
)

func main() {
	tableFlag := flag.String("table", "all", "which table to regenerate: 2, 3, perf, overhead, baselines, triage, all")
	appsFlag := flag.String("apps", "", "comma-separated app names (default: all Table 2 apps)")
	compareFlag := flag.String("compare", "", "regression gate: compare this 'go test -json -bench' output against -baseline and exit")
	crossoverFlag := flag.String("crossover", "", "render the graph-vs-stream crossover table from this 'go test -json -bench' output and exit")
	baselineFlag := flag.String("baseline", "BENCH_baseline.json", "baseline benchmark output for -compare")
	regressFlag := flag.Float64("regress", 20, "tolerated geomean slowdown in percent for -compare")
	flag.Parse()

	if *crossoverFlag != "" {
		if err := runCrossover(os.Stdout, *crossoverFlag); err != nil {
			fatal(err)
		}
		return
	}

	if *compareFlag != "" {
		ok, err := runBenchCmp(os.Stdout, *baselineFlag, *compareFlag, *regressFlag)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	list := apps.All()
	if *appsFlag != "" {
		list = nil
		for _, name := range strings.Split(*appsFlag, ",") {
			app, err := apps.New(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			list = append(list, app)
		}
	}

	want := func(name string) bool { return *tableFlag == "all" || *tableFlag == name }

	var results []*eval.AppResult
	need := want("2") || want("3") || want("perf") || want("baselines")
	if need {
		// Isolated per app: one broken model loses its rows, not the run.
		var failures []eval.AppFailure
		results, failures = eval.RunAllIsolated(list)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchtables: %s failed evaluation: %v (rows omitted)\n", f.App, f.Err)
		}
	}

	if want("2") {
		fmt.Println(report.Table2(results))
	}
	if want("3") {
		fmt.Println(report.Table3(results))
	}
	if want("perf") {
		fmt.Println(report.Perf(results))
	}
	if want("overhead") {
		fmt.Printf("Trace-generation overhead (published: up to %.0fx slowdown)\n", paper.TraceGenSlowdownMax)
		for _, app := range list {
			with, without, err := eval.Overhead(app, 3)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-16s  with trace %10v   without %10v   slowdown %.2fx\n",
				app.Name(), with.Round(100_000), without.Round(100_000),
				float64(with)/float64(without))
		}
		fmt.Println()
	}
	if want("baselines") {
		fmt.Println(report.Baselines(results, baseline.All()))
	}
	// Triage replays every report many times and is expensive on the large
	// apps, so it only runs when requested explicitly (combine with -apps).
	if *tableFlag == "triage" {
		for _, app := range list {
			res, err := eval.Triage(app, 40)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: %d/%d reports confirmed by reorder-replay\n",
				app.Name(), res.Confirmed, len(res.Races))
			for _, tr := range res.Races {
				verdict := "unconfirmed"
				if tr.Confirmed {
					verdict = fmt.Sprintf("CONFIRMED (seed %d)", tr.Seed)
				}
				fmt.Printf("  %-13s %-40s %s\n", tr.Race.Category, tr.Race.Loc, verdict)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}
