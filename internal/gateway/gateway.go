// Package gateway is the fleet front door: one process that spreads
// trace submissions across N racedetd backends and keeps the fleet's
// acceptance promise when individual backends die.
//
// Routing is a consistent-hash ring over the content-derived idempotency
// key — the same key every backend computes from the body — so a
// duplicate submission lands on the same backend as the original and
// coalesces there instead of being analyzed twice. Health is active:
// per-backend probes against /readyz feed a consecutive-failure breaker
// (shared semantics with the job pool's per-input breaker); an opened
// breaker ejects the backend from routing, and seeded-backoff probes
// reinstate it once it answers again.
//
// Failover is bounded and honest. A submission whose home backend is
// down walks the next live peers in ring order, at most MaxFailover
// deep; when every backend is down the gateway says so — 503 with a
// Retry-After hint — rather than queueing what it cannot place. The
// dangerous window is a forward that died in flight: the backend may
// have durably spooled the trace before crashing ("in doubt"), and the
// failover peer will analyze it too. The gateway closes that window with
// a reconcile handshake: in-doubt keys are remembered per backend in a
// bounded ledger, and reinstatement POSTs them to /v1/reconcile so the
// recovering backend deletes the orphaned spool files instead of
// re-analyzing work the fleet already placed elsewhere. Backends hold
// their restart sweep for a grace period (racedetd -sweep-grace) to let
// this handshake win the race against the sweep.
//
// A bounded LRU caches terminal answers (done, quarantined) by
// idempotency key, so duplicate waves replay from the gateway without
// touching any backend — including backends that are currently down.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"droidracer/internal/jobs"
	"droidracer/internal/obs"
	"droidracer/internal/server"
)

// Bounds on the gateway's per-key bookkeeping. Both maps are advisory
// state (losing an entry degrades to extra work, never to lost work), so
// overflow drops entries instead of refusing traffic.
const (
	maxLedgerPerBackend = 1024
	maxPending          = 65536
)

// Config configures the fleet gateway.
type Config struct {
	// Backends is the static fleet: racedetd base URLs. Required.
	Backends []string
	// MaxBody bounds submission bodies in bytes (default 8 MiB).
	MaxBody int64
	// CacheEntries bounds the terminal-result LRU (default 1024).
	CacheEntries int
	// ProbeInterval is the health-probe period for live backends
	// (default 1s); ejected backends are probed with exponential backoff
	// seeded at this interval.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe request (default 1s).
	ProbeTimeout time.Duration
	// EjectThreshold is the consecutive-failure count (probes and
	// forwards share one streak) that ejects a backend (default 3).
	EjectThreshold int
	// MaxFailover bounds how many ring peers a submission may walk
	// (default: all of them).
	MaxFailover int
	// ForwardTimeout bounds one forward including its internal retry
	// (default 30s).
	ForwardTimeout time.Duration
	// RetryAfter is the hint sent when the whole fleet is unavailable or
	// the gateway is draining (default 10s).
	RetryAfter time.Duration
	// Engine, when set, is the fleet's default analysis engine ("graph"
	// or "stream"), applied to forwards whose submission carried no
	// X-Analysis-Engine header. A client's explicit header wins. The
	// gateway forwards the selector without validating it; backends
	// reject unknown engines with 400.
	Engine string
	// Seed makes probe-backoff jitter and forward-retry jitter
	// deterministic for tests.
	Seed int64
	// HTTPClient defaults to a client with sane timeouts.
	HTTPClient *http.Client
	// Events receives gateway lifecycle events (eject, reinstate,
	// failover, reconcile, fleet-unavailable).
	Events *slog.Logger
	// TraceSlow is the tail-capture threshold for gateway traces: an
	// unsampled submission whose routing (cache, coalescing, and the
	// whole failover walk) exceeds it commits its trace to the span
	// store. Failed and failed-over submissions always commit; 0
	// disables only the slowness trigger.
	TraceSlow time.Duration
}

// backendState is the per-backend routing state. The URL set is fixed at
// construction; only liveness changes.
type backendState struct {
	url  string
	live atomic.Bool
	// wasEjected distinguishes reinstatement (a recovery, counted) from
	// the initial probe pass at startup (not a recovery).
	wasEjected atomic.Bool
}

// Gateway routes submissions across the backend fleet.
type Gateway struct {
	cfg      Config
	ring     *Ring
	backends map[string]*backendState
	brk      *jobs.Breaker
	cache    *resultCache
	keys     keyedLocks
	draining atomic.Bool

	mu sync.Mutex
	// pending maps accepted-but-unfinished keys to the backend that
	// acknowledged them, so duplicates coalesce there instead of
	// re-executing on another peer. Advisory: lost on gateway restart.
	pending map[string]string
	// ledger holds in-doubt keys per backend: forwards that died in
	// flight after possibly reaching the backend. Replayed to
	// /v1/reconcile at reinstatement. FIFO-bounded per backend.
	ledger      map[string]map[string]struct{}
	ledgerOrder map[string][]string

	httpc *http.Client
	mux   *http.ServeMux
}

// New builds a gateway over the configured fleet. Backends start
// not-live; StartProbing brings them in as probes pass.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.EjectThreshold <= 0 {
		cfg.EjectThreshold = 3
	}
	if cfg.MaxFailover <= 0 || cfg.MaxFailover > len(cfg.Backends) {
		cfg.MaxFailover = len(cfg.Backends)
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 10 * time.Second
	}
	if cfg.Events == nil {
		cfg.Events = obs.Nop()
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: cfg.ForwardTimeout}
	}
	g := &Gateway{
		cfg:         cfg,
		ring:        NewRing(cfg.Backends),
		backends:    make(map[string]*backendState, len(cfg.Backends)),
		cache:       newResultCache(cfg.CacheEntries),
		pending:     make(map[string]string),
		ledger:      make(map[string]map[string]struct{}),
		ledgerOrder: make(map[string][]string),
		httpc:       cfg.HTTPClient,
	}
	for _, b := range cfg.Backends {
		if g.backends[b] != nil {
			return nil, fmt.Errorf("gateway: duplicate backend %s", b)
		}
		g.backends[b] = &backendState{url: b}
	}
	g.brk = &jobs.Breaker{
		Threshold: cfg.EjectThreshold,
		OnOpen:    func(url string, err error) { g.eject(url, err) },
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.handleStatus)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	return g, nil
}

// Handler exposes the gateway API for tests and embedding.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Serve binds addr and serves the gateway in the background, returning
// the http.Server and bound address (useful with ":0").
func (g *Gateway) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: g.mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// BeginDrain flips readiness off and refuses new submissions.
func (g *Gateway) BeginDrain() {
	if g.draining.CompareAndSwap(false, true) {
		g.cfg.Events.Info("gateway.drain")
	}
}

// LiveBackends returns the backends currently in routing, in ring-list
// order.
func (g *Gateway) LiveBackends() []string {
	var out []string
	for _, b := range g.cfg.Backends {
		if g.backends[b].live.Load() {
			out = append(out, b)
		}
	}
	return out
}

func (g *Gateway) liveCount() int {
	n := 0
	for _, st := range g.backends {
		if st.live.Load() {
			n++
		}
	}
	return n
}

// respond writes the JSON answer, mirroring the backend response shape
// (Retry-After header mirrors RetryAfterSeconds) and counting the code.
func respond(w http.ResponseWriter, code int, resp *server.SubmitResponse) {
	if resp.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfterSeconds))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
	countGatewayCode(strconv.Itoa(code))
}

// statusCode maps a backend answer to its HTTP code: terminal done is
// 200, terminal quarantine is 422, anything still in flight is 202.
func statusCode(resp *server.SubmitResponse) int {
	switch resp.Status {
	case server.StatusDone:
		return http.StatusOK
	case server.StatusQuarantined:
		return http.StatusUnprocessableEntity
	default:
		return http.StatusAccepted
	}
}

// handleSubmit is the trace shell around routing: every submission runs
// under a "gateway.submit" span (each forward attempt gets a child span
// naming its backend), continuing the client's traceparent when present.
// Unsampled traces are kept only when routing failed over, failed
// outright, or blew the TraceSlow threshold — the tail worth keeping.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sc, sampled := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	traceID := sc.TraceID
	if !sampled {
		traceID = obs.NewTraceID()
	}
	rec := obs.Traces().Begin(traceID, sampled)
	gsp := rec.StartSpan("gateway.submit", sc.SpanID)
	start := time.Now()
	var forced bool
	defer func() {
		gsp.End()
		rec.Commit(forced || (g.cfg.TraceSlow > 0 && time.Since(start) > g.cfg.TraceSlow))
	}()
	g.routeSubmit(w, r, rec, gsp, &forced)
}

// routeSubmit routes one submission: cache, then pending coalescing,
// then the bounded live-ring walk. forced flips when the trace must be
// tail-captured regardless of sampling (a forward failed or the whole
// fleet was unavailable).
func (g *Gateway) routeSubmit(w http.ResponseWriter, r *http.Request, rec *obs.TraceRec, gsp *obs.TSpan, forced *bool) {
	if g.draining.Load() {
		respond(w, http.StatusServiceUnavailable, &server.SubmitResponse{
			Status: server.StatusRejected, Reason: server.RejectShuttingDown,
			RetryAfterSeconds: retrySeconds(g.cfg.RetryAfter),
		})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		respond(w, http.StatusRequestEntityTooLarge, &server.SubmitResponse{
			Status: server.StatusRejected, Reason: server.RejectBodyTooLarge,
		})
		return
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		respond(w, http.StatusBadRequest, &server.SubmitResponse{
			Status: server.StatusRejected, Reason: server.RejectEmptyBody,
		})
		return
	}
	key := server.IdempotencyKey(body)
	gsp.SetAttr("job", key)
	if hdr := r.Header.Get("Idempotency-Key"); hdr != "" && hdr != key {
		respond(w, http.StatusBadRequest, &server.SubmitResponse{
			Status: server.StatusRejected, Reason: server.RejectKeyMismatch,
		})
		return
	}
	// Serialize per key so concurrent duplicates don't race the cache
	// and double-forward. The lock is per exact key (not striped): the
	// critical section spans the whole failover walk — up to MaxFailover
	// forwards at ForwardTimeout each — and unrelated keys must not queue
	// behind one slow backend.
	defer g.keys.lock(key)()

	if resp, ok := g.cache.get(key); ok {
		cacheHits.Inc()
		resp.Cached = true
		// The cached answer names the trace that analyzed it; the replay
		// span points there so a p99 exemplar chased through the cache
		// still lands on the spans that did the work.
		gsp.SetAttr("cached", "true")
		if resp.TraceID != "" {
			gsp.SetAttr("analyzed_trace_id", resp.TraceID)
		}
		respond(w, statusCode(&resp), &resp)
		return
	}
	cacheMisses.Inc()

	deadline := parseDeadline(r.Header.Get(server.DeadlineHeader))
	clientID := r.Header.Get("X-Client-ID")
	// The engine selector forwards verbatim; the backend validates it.
	// The result cache stays keyed by body alone: both engines report
	// identical race sets (the engine-differential CI gate), so a
	// cached answer is correct regardless of which engine computed it.
	engine := r.Header.Get(server.EngineHeader)
	if engine == "" {
		engine = g.cfg.Engine
	}

	// A key the fleet already accepted must not be re-executed on a
	// different peer: route to the accepting backend, or — if it is down
	// — coalesce locally. The work is durably spooled there; it will
	// finish when the backend returns.
	if target, ok := g.pendingFor(key); ok {
		gsp.SetAttr("coalesced", "true")
		if g.backends[target].live.Load() {
			fsp := g.startForwardSpan(rec, gsp, target)
			resp, code, _, ferr := g.forward(r.Context(), target, key, body, deadline, clientID, engine, fsp.Context().Traceparent())
			if ferr == nil || (resp != nil && code >= 400 && code < 500) {
				fsp.SetAttr("outcome", forwardOutcome(ferr))
				fsp.End()
				g.finishForward(w, key, target, resp, code, ferr)
				return
			}
			fsp.SetAttr("outcome", "failed")
			fsp.SetErr(ferr)
			fsp.End()
			// The acceptor acknowledged this key: its spool and restart
			// sweep own the work, so a dead duplicate forward is NOT in
			// doubt — ledgering it would reclaim (delete) acknowledged
			// work at the reconcile handshake.
			g.forwardFailed(r.Context(), target, key, false, ferr)
			*forced = true
		}
		respond(w, http.StatusAccepted, &server.SubmitResponse{
			Job: key, Status: server.StatusPending, Coalesced: true,
		})
		return
	}

	var walked []string
	for _, target := range g.ring.Order(key) {
		if !g.backends[target].live.Load() {
			continue
		}
		if len(walked) >= g.cfg.MaxFailover {
			break
		}
		if len(walked) > 0 {
			failoversTotal.Inc()
			g.cfg.Events.Info("gateway.failover", "job", key,
				"from", walked[len(walked)-1], "to", target, "trace_id", rec.TraceID())
		}
		walked = append(walked, target)
		fsp := g.startForwardSpan(rec, gsp, target)
		resp, code, inDoubt, ferr := g.forward(r.Context(), target, key, body, deadline, clientID, engine, fsp.Context().Traceparent())
		if ferr == nil || (resp != nil && code >= 400 && code < 500) {
			fsp.SetAttr("outcome", forwardOutcome(ferr))
			fsp.End()
			g.finishForward(w, key, target, resp, code, ferr)
			return
		}
		fsp.SetAttr("outcome", "failed")
		if inDoubt {
			fsp.SetAttr("in_doubt", "true")
		}
		fsp.SetErr(ferr)
		fsp.End()
		g.forwardFailed(r.Context(), target, key, inDoubt, ferr)
		if r.Context().Err() != nil {
			// The inbound client is gone: further forwards would fail on
			// the same canceled context, and there is nobody to answer.
			// Don't let the walk masquerade as fleet unavailability.
			return
		}
		*forced = true
	}
	fleetUnavailableTotal.Inc()
	*forced = true
	g.cfg.Events.Warn("gateway.fleet-unavailable", "job", key, "walked", len(walked), "trace_id", rec.TraceID())
	respond(w, http.StatusServiceUnavailable, &server.SubmitResponse{
		Job: key, Status: server.StatusRejected, Reason: "fleet-unavailable",
		RetryAfterSeconds: retrySeconds(g.cfg.RetryAfter),
	})
}

// forward submits body to one backend through the shared retrying
// client, restricted so only transport errors and 5xx retry (a backend's
// 429 passes through with its honest Retry-After instead of stalling the
// forward). The inDoubt result reports whether any attempt died in
// flight — the backend may have spooled the trace without answering.
func (g *Gateway) forward(ctx context.Context, target, key string, body []byte,
	deadline time.Duration, clientID, engine, traceparent string) (*server.SubmitResponse, int, bool, error) {
	fctx, cancel := context.WithTimeout(ctx, g.cfg.ForwardTimeout)
	defer cancel()
	cl := server.Client{
		BaseURL:     target,
		HTTPClient:  g.httpc,
		MaxAttempts: 2,
		BaseBackoff: 50 * time.Millisecond,
		// Mixing the key into the seed keeps jitter deterministic for a
		// fixed config seed (tests) while decorrelating the retry sleeps
		// of concurrent requests against a struggling backend.
		Seed:            g.cfg.Seed ^ int64(fnv64a(key)),
		Deadline:        deadline,
		ClientID:        clientID,
		Engine:          engine,
		Traceparent:     traceparent,
		RetryableStatus: func(code int) bool { return code >= 500 },
	}
	resp, attempts, err := cl.Submit(fctx, body)
	code, inDoubt := 0, false
	for _, at := range attempts {
		code = at.Code
		if at.Code == 0 {
			inDoubt = true
		}
	}
	return resp, code, inDoubt, err
}

// forwardOutcome labels a decisive forward: "ok" for an acceptance or
// terminal answer, "rejected" for a relayed 4xx refusal.
func forwardOutcome(err error) string {
	if err != nil {
		return "rejected"
	}
	return "ok"
}

// startForwardSpan opens the child span for one forward attempt. The
// span's own context becomes the traceparent sent to the backend, so
// the backend's admission span hangs under exactly the hop that reached
// it — a failed-over submission shows one failed and one successful
// forward span with distinct backend attributes.
func (g *Gateway) startForwardSpan(rec *obs.TraceRec, gsp *obs.TSpan, target string) *obs.TSpan {
	fsp := rec.StartSpan("gateway.forward", gsp.ID())
	fsp.SetAttr("backend", target)
	return fsp
}

// finishForward turns a decisive backend answer into the gateway
// response: terminal answers fill the cache, acceptances fill the
// pending map, 4xx rejections pass through untouched.
func (g *Gateway) finishForward(w http.ResponseWriter, key, target string,
	resp *server.SubmitResponse, code int, err error) {
	g.brk.Success(target)
	if err != nil {
		// Decisive 4xx rejection (rate limit, body too large…): the
		// backend is healthy and said no; relay its answer verbatim.
		forwardsTotal(target, "rejected").Inc()
		if resp == nil {
			resp = &server.SubmitResponse{Status: server.StatusRejected}
		}
		respond(w, code, resp)
		return
	}
	forwardsTotal(target, "ok").Inc()
	// The backend answered decisively for this key, so its own spool,
	// journal, and restart sweep own the work from here: an in-doubt
	// ledger entry left over from an earlier dead forward must not
	// survive, or a later reconcile handshake would reclaim (delete) the
	// spool of acknowledged, unfinished work.
	g.ledgerRemove(target, key)
	switch resp.Status {
	case server.StatusDone, server.StatusQuarantined:
		g.cacheFill(key, target, *resp)
		g.clearPending(key)
	default:
		g.setPending(key, target)
	}
	respond(w, statusCode(resp), resp)
}

// cacheFill admits a terminal answer into the result cache after an
// integrity cross-check on the backend's digest field. The cache serves
// duplicates for the lifetime of the gateway, so a wrong entry is wrong
// forever: a done answer without a well-formed result digest
// (jobs.ResultDigest, 16 hex chars) is relayed to its client but never
// cached, and a done answer whose digest contradicts an already-cached
// one for the same content key evicts the cached entry instead of
// silently keeping either side — one of the two backends served rotted
// state, and the next poll re-derives the answer from a backend rather
// than from the cache.
func (g *Gateway) cacheFill(key, target string, resp server.SubmitResponse) {
	if resp.Status == server.StatusDone && !wellFormedDigest(resp.Digest) {
		digestRejectsTotal.Inc()
		g.cfg.Events.Warn("gateway.digest-reject", "job", key, "backend", target, "digest", resp.Digest)
		return
	}
	if prev, ok := g.cache.get(key); ok &&
		prev.Status == server.StatusDone && resp.Status == server.StatusDone &&
		prev.Digest != resp.Digest {
		digestMismatchTotal.Inc()
		g.cfg.Events.Error("gateway.digest-mismatch", "job", key, "backend", target,
			"cached", prev.Digest, "got", resp.Digest)
		g.cache.remove(key)
		return
	}
	g.cache.add(key, resp)
}

// wellFormedDigest reports whether d looks like a jobs.ResultDigest:
// exactly 16 lowercase hex characters.
func wellFormedDigest(d string) bool {
	if len(d) != 16 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// forwardFailed records a failed forward: the in-doubt ledger entry, the
// shared failure streak (which may eject the backend), and the metric.
// A forward that died because the inbound client disconnected says
// nothing about the backend: it is neither ledgered (nothing fails over,
// so a spooled trace is simply the backend's to finish) nor counted
// toward ejection (a burst of client disconnects must not eject a
// healthy backend).
func (g *Gateway) forwardFailed(reqCtx context.Context, target, key string, inDoubt bool, err error) {
	if reqCtx.Err() != nil {
		forwardsTotal(target, "canceled").Inc()
		return
	}
	forwardsTotal(target, "failed").Inc()
	if inDoubt {
		g.ledgerAdd(target, key)
	}
	g.brk.Failure(target, err)
}

// handleStatus answers job polls: cache first, then the accepting
// backend, then every live peer in ring order. Terminal answers fill the
// cache on the way through, so polling is what warms the cache for
// duplicate submissions.
func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSuffix(r.PathValue("id"), ".trace")
	if resp, ok := g.cache.get(id); ok {
		cacheHits.Inc()
		resp.Cached = true
		respond(w, http.StatusOK, &resp)
		return
	}
	targets := g.ring.Order(id)
	if pb, ok := g.pendingFor(id); ok {
		reordered := []string{pb}
		for _, t := range targets {
			if t != pb {
				reordered = append(reordered, t)
			}
		}
		targets = reordered
	}
	for _, target := range targets {
		if !g.backends[target].live.Load() {
			continue
		}
		cl := server.Client{BaseURL: target, HTTPClient: g.httpc}
		resp, err := cl.Status(r.Context(), id)
		if err != nil || resp.Status == "unknown" {
			continue
		}
		if resp.Status == server.StatusDone || resp.Status == server.StatusQuarantined {
			g.cacheFill(id, target, *resp)
			g.clearPending(id)
		}
		respond(w, http.StatusOK, resp)
		return
	}
	if _, ok := g.pendingFor(id); ok {
		respond(w, http.StatusOK, &server.SubmitResponse{
			Job: id, Status: server.StatusPending, Coalesced: true,
		})
		return
	}
	respond(w, http.StatusNotFound, &server.SubmitResponse{Job: id, Status: "unknown"})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: false while draining or while zero
// backends are live — an upstream balancer should stop routing here when
// the gateway cannot place work.
func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if g.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if g.liveCount() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no live backends")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// pending map accessors.

func (g *Gateway) pendingFor(key string) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.pending[key]
	return t, ok
}

func (g *Gateway) setPending(key, target string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.pending) >= maxPending {
		for k := range g.pending {
			delete(g.pending, k)
			break
		}
	}
	g.pending[key] = target
}

func (g *Gateway) clearPending(key string) {
	g.mu.Lock()
	delete(g.pending, key)
	g.mu.Unlock()
}

// ledgerAdd records an in-doubt key for a backend, FIFO-bounded.
func (g *Gateway) ledgerAdd(target, key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	set := g.ledger[target]
	if set == nil {
		set = make(map[string]struct{})
		g.ledger[target] = set
	}
	if _, ok := set[key]; ok {
		return
	}
	if len(set) >= maxLedgerPerBackend {
		oldest := g.ledgerOrder[target][0]
		g.ledgerOrder[target] = g.ledgerOrder[target][1:]
		delete(set, oldest)
		ledgerDroppedTotal.Inc()
	}
	set[key] = struct{}{}
	g.ledgerOrder[target] = append(g.ledgerOrder[target], key)
}

// ledgerRemove drops one key from a backend's in-doubt ledger. Called
// when that backend answers decisively for the key: it has acknowledged
// the work, and asking it to reclaim the spool at the next reconcile
// would destroy an accepted job.
func (g *Gateway) ledgerRemove(target, key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	set := g.ledger[target]
	if _, ok := set[key]; !ok {
		return
	}
	delete(set, key)
	order := g.ledgerOrder[target]
	for i, k := range order {
		if k == key {
			g.ledgerOrder[target] = append(order[:i], order[i+1:]...)
			break
		}
	}
}

// ledgerTake removes and returns the in-doubt keys for a backend.
func (g *Gateway) ledgerTake(target string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	keys := g.ledgerOrder[target]
	delete(g.ledger, target)
	delete(g.ledgerOrder, target)
	return keys
}

// ledgerRestore puts keys back after a failed reconcile handshake.
func (g *Gateway) ledgerRestore(target string, keys []string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	set := g.ledger[target]
	if set == nil {
		set = make(map[string]struct{})
		g.ledger[target] = set
	}
	for _, k := range keys {
		if _, ok := set[k]; !ok {
			set[k] = struct{}{}
			g.ledgerOrder[target] = append(g.ledgerOrder[target], k)
		}
	}
}

// reconcile runs the reinstatement handshake: tell the backend which
// keys are in doubt so it reclaims their spool orphans, and signal that
// the fleet view is complete so it may release its restart sweep.
func (g *Gateway) reconcile(ctx context.Context, target string) error {
	keys := g.ledgerTake(target)
	payload, _ := json.Marshal(server.ReconcileRequest{Reclaim: keys})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		target+"/v1/reconcile", bytes.NewReader(payload))
	if err != nil {
		g.ledgerRestore(target, keys)
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := g.httpc.Do(req)
	if err != nil {
		g.ledgerRestore(target, keys)
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		g.ledgerRestore(target, keys)
		return fmt.Errorf("reconcile: %s answered %d", target, httpResp.StatusCode)
	}
	var resp server.ReconcileResponse
	if derr := json.NewDecoder(httpResp.Body).Decode(&resp); derr != nil {
		return fmt.Errorf("reconcile: decoding: %w", derr)
	}
	g.cfg.Events.Info("gateway.reconcile", "backend", target,
		"in_doubt", len(keys), "reclaimed", resp.Reclaimed)
	return nil
}

// retrySeconds converts a hint duration to whole seconds, at least 1.
func retrySeconds(d time.Duration) int {
	s := int(d / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// parseDeadline parses a pass-through X-Analysis-Deadline header; the
// backend validates, so malformed values are simply dropped here.
func parseDeadline(h string) time.Duration {
	if h == "" {
		return 0
	}
	d, err := time.ParseDuration(h)
	if err != nil || d <= 0 {
		return 0
	}
	return d
}
