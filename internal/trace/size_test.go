package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestDeclaredOps(t *testing.T) {
	body := "#! ops=3\nthreadinit(t1)\nwrite(t1,x)\nread(t1,x)\n"
	n, err := DeclaredOps([]byte(body))
	if err != nil {
		t.Fatalf("DeclaredOps: %v", err)
	}
	if n != 3 {
		t.Fatalf("declared ops = %d, want 3", n)
	}
	tr, err := ParseBytes([]byte(body))
	if err != nil {
		t.Fatalf("ParseBytes with directive: %v", err)
	}
	if tr.Len() != 3 {
		t.Fatalf("parsed %d ops, want 3", tr.Len())
	}
}

func TestDeclaredOpsAbsent(t *testing.T) {
	for _, body := range []string{
		"",
		"threadinit(t1)\n",
		"# plain comment\nthreadinit(t1)\n",
		"#! nothing relevant\nthreadinit(t1)\n", // #! without ops= declares nothing
		"\n\n  \nthreadinit(t1)\n",
	} {
		n, err := DeclaredOps([]byte(body))
		if err != nil || n != 0 {
			t.Errorf("DeclaredOps(%q) = %d, %v; want 0, nil", body, n, err)
		}
	}
}

func TestDeclaredOpsBomb(t *testing.T) {
	// A tiny body declaring a billion ops: the preallocation this aims at
	// would be gigabytes. Must come back as a typed SizeError from both
	// the directive scan and the parser, with nothing allocated.
	body := []byte("#! ops=1000000000\nthreadinit(t1)\n")
	var se *SizeError
	if _, err := DeclaredOps(body); !errors.As(err, &se) {
		t.Fatalf("DeclaredOps: got %v, want *SizeError", err)
	}
	if se.Declared != 1000000000 || se.InputBytes != len(body) {
		t.Fatalf("SizeError = %+v", se)
	}
	if se.Max >= se.Declared {
		t.Fatalf("SizeError.Max %d not below declared %d", se.Max, se.Declared)
	}
	if _, err := ParseBytes(body); !errors.As(err, &se) {
		t.Fatalf("ParseBytes: got %v, want *SizeError", err)
	}
	if !strings.Contains(se.Error(), "1000000000") {
		t.Fatalf("SizeError message lacks the declared count: %q", se.Error())
	}
}

func TestDeclaredOpsUnparsable(t *testing.T) {
	for _, body := range []string{
		"#! ops=banana\nthreadinit(t1)\n",
		"#! ops=-5\nthreadinit(t1)\n",
	} {
		_, err := DeclaredOps([]byte(body))
		if err == nil {
			t.Errorf("DeclaredOps(%q): want error", body)
		}
		var se *SizeError
		if errors.As(err, &se) {
			t.Errorf("DeclaredOps(%q): bad directive must not be a SizeError", body)
		}
	}
}

func TestParseBytesDirectiveRoundTrip(t *testing.T) {
	// The directive only drives preallocation; the parsed trace must be
	// identical with and without it.
	ops := "threadinit(t1)\nattachQ(t1)\nloopOnQ(t1)\npost(t0,A,t1)\nbegin(t1,A)\nwrite(t1,x)\nend(t1,A)\n"
	plain, err := ParseBytes([]byte(ops))
	if err != nil {
		t.Fatal(err)
	}
	declared, err := ParseBytes([]byte("#! ops=7\n" + ops))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != declared.Len() {
		t.Fatalf("len mismatch: %d vs %d", plain.Len(), declared.Len())
	}
	for i, op := range plain.Ops() {
		if declared.Ops()[i] != op {
			t.Fatalf("op %d differs: %v vs %v", i, op, declared.Ops()[i])
		}
	}
	// An under-declared count is merely a bad hint, never an error.
	under, err := ParseBytes([]byte("#! ops=1\n" + ops))
	if err != nil || under.Len() != plain.Len() {
		t.Fatalf("under-declared parse: len=%d err=%v", under.Len(), err)
	}
}
