package semantics

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"droidracer/internal/paper"
	"droidracer/internal/trace"
)

// step applies ops to a fresh state with the given initial threads,
// returning the first error.
func step(initial []trace.ThreadID, ops ...trace.Op) error {
	s := NewState(initial)
	for _, op := range ops {
		if err := s.Step(op); err != nil {
			return err
		}
	}
	return nil
}

func wantRule(t *testing.T, err error, rule string) {
	t.Helper()
	if err == nil {
		t.Fatalf("no error, want %s violation", rule)
	}
	var re *RuleError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a RuleError", err)
	}
	if re.Rule != rule {
		t.Fatalf("rule = %s, want %s (err: %v)", re.Rule, rule, err)
	}
}

func TestInitRule(t *testing.T) {
	if err := step([]trace.ThreadID{1}, trace.ThreadInit(1)); err != nil {
		t.Fatal(err)
	}
	// Initializing an unknown thread violates INIT.
	wantRule(t, step(nil, trace.ThreadInit(1)), "INIT")
	// Initializing twice violates INIT (thread no longer in C).
	wantRule(t, step([]trace.ThreadID{1}, trace.ThreadInit(1), trace.ThreadInit(1)), "INIT")
}

func TestExitRule(t *testing.T) {
	if err := step([]trace.ThreadID{1}, trace.ThreadInit(1), trace.ThreadExit(1)); err != nil {
		t.Fatal(err)
	}
	wantRule(t, step([]trace.ThreadID{1}, trace.ThreadExit(1)), "EXIT")
	// Operations after exit fail: the thread left R.
	wantRule(t, step([]trace.ThreadID{1},
		trace.ThreadInit(1), trace.ThreadExit(1), trace.Read(1, "x")), "read")
}

func TestForkJoinRules(t *testing.T) {
	ok := []trace.Op{
		trace.ThreadInit(1),
		trace.Fork(1, 2),
		trace.ThreadInit(2),
		trace.ThreadExit(2),
		trace.Join(1, 2),
	}
	if err := step([]trace.ThreadID{1}, ok...); err != nil {
		t.Fatal(err)
	}
	// Forking an existing thread id is not fresh.
	wantRule(t, step([]trace.ThreadID{1, 2},
		trace.ThreadInit(1), trace.Fork(1, 2)), "FORK")
	// Joining a thread that has not finished.
	wantRule(t, step([]trace.ThreadID{1},
		trace.ThreadInit(1), trace.Fork(1, 2), trace.ThreadInit(2), trace.Join(1, 2)), "JOIN")
	// Fork by a non-running thread.
	wantRule(t, step([]trace.ThreadID{1}, trace.Fork(1, 2)), "FORK")
}

func TestAttachLoopRules(t *testing.T) {
	if err := step([]trace.ThreadID{1},
		trace.ThreadInit(1), trace.AttachQ(1), trace.LoopOnQ(1)); err != nil {
		t.Fatal(err)
	}
	wantRule(t, step([]trace.ThreadID{1},
		trace.ThreadInit(1), trace.AttachQ(1), trace.AttachQ(1)), "ATTACHQ")
	wantRule(t, step([]trace.ThreadID{1},
		trace.ThreadInit(1), trace.LoopOnQ(1)), "LOOPONQ")
	wantRule(t, step([]trace.ThreadID{1},
		trace.ThreadInit(1), trace.AttachQ(1), trace.LoopOnQ(1), trace.LoopOnQ(1)), "LOOPONQ")
}

func TestPostBeginEndRules(t *testing.T) {
	base := []trace.Op{
		trace.ThreadInit(1), trace.ThreadInit(2),
		trace.AttachQ(1), trace.LoopOnQ(1),
	}
	ok := append(append([]trace.Op{}, base...),
		trace.Post(2, "p", 1),
		trace.Begin(1, "p"),
		trace.Read(1, "x"),
		trace.End(1, "p"),
	)
	if err := step([]trace.ThreadID{1, 2}, ok...); err != nil {
		t.Fatal(err)
	}
	// Post to a thread without a queue.
	wantRule(t, step([]trace.ThreadID{1, 2},
		trace.ThreadInit(1), trace.ThreadInit(2), trace.Post(1, "p", 2)), "POST")
	// Begin out of FIFO order.
	bad := append(append([]trace.Op{}, base...),
		trace.Post(2, "p", 1),
		trace.Post(2, "q", 1),
		trace.Begin(1, "q"),
	)
	wantRule(t, step([]trace.ThreadID{1, 2}, bad...), "BEGIN")
	// Begin while a task runs.
	bad = append(append([]trace.Op{}, base...),
		trace.Post(2, "p", 1),
		trace.Post(2, "q", 1),
		trace.Begin(1, "p"),
		trace.Begin(1, "q"),
	)
	wantRule(t, step([]trace.ThreadID{1, 2}, bad...), "BEGIN")
	// End of a task that is not running.
	bad = append(append([]trace.Op{}, base...), trace.End(1, "p"))
	wantRule(t, step([]trace.ThreadID{1, 2}, bad...), "END")
}

func TestDelayedAndFrontPosts(t *testing.T) {
	base := []trace.Op{
		trace.ThreadInit(1), trace.ThreadInit(2),
		trace.AttachQ(1), trace.LoopOnQ(1),
	}
	// A delayed task may begin after a later-posted non-delayed task.
	ok := append(append([]trace.Op{}, base...),
		trace.PostDelayed(2, "slow", 1, 500),
		trace.Post(2, "fast", 1),
		trace.Begin(1, "fast"),
		trace.End(1, "fast"),
		trace.Begin(1, "slow"),
		trace.End(1, "slow"),
	)
	if err := step([]trace.ThreadID{1, 2}, ok...); err != nil {
		t.Fatal(err)
	}
	// A front post overtakes earlier queued tasks.
	ok = append(append([]trace.Op{}, base...),
		trace.Post(2, "first", 1),
		trace.PostFront(2, "urgent", 1),
		trace.Begin(1, "urgent"),
		trace.End(1, "urgent"),
		trace.Begin(1, "first"),
		trace.End(1, "first"),
	)
	if err := step([]trace.ThreadID{1, 2}, ok...); err != nil {
		t.Fatal(err)
	}
	// Without the front flag the same order violates FIFO.
	bad := append(append([]trace.Op{}, base...),
		trace.Post(2, "first", 1),
		trace.Post(2, "urgent", 1),
		trace.Begin(1, "urgent"),
	)
	wantRule(t, step([]trace.ThreadID{1, 2}, bad...), "BEGIN")
}

func TestCancelRemovesPendingPost(t *testing.T) {
	ops := []trace.Op{
		trace.ThreadInit(1), trace.ThreadInit(2),
		trace.AttachQ(1), trace.LoopOnQ(1),
		trace.Post(2, "a", 1),
		trace.Post(2, "b", 1),
		trace.Cancel(2, "a"),
		trace.Begin(1, "b"), // a was cancelled, so b is now the front
		trace.End(1, "b"),
	}
	if err := step([]trace.ThreadID{1, 2}, ops...); err != nil {
		t.Fatal(err)
	}
}

func TestLockRules(t *testing.T) {
	ops := []trace.Op{
		trace.ThreadInit(1), trace.ThreadInit(2),
		trace.Acquire(1, "l"),
		trace.Acquire(1, "l"), // reentrant acquire by the holder is allowed
		trace.Release(1, "l"),
		trace.Release(1, "l"),
		trace.Acquire(2, "l"), // free again
		trace.Release(2, "l"),
	}
	if err := step([]trace.ThreadID{1, 2}, ops...); err != nil {
		t.Fatal(err)
	}
	// Acquiring a lock held by another thread violates ACQUIRE.
	wantRule(t, step([]trace.ThreadID{1, 2},
		trace.ThreadInit(1), trace.ThreadInit(2),
		trace.Acquire(1, "l"), trace.Acquire(2, "l")), "ACQUIRE")
	// Releasing an unheld lock violates RELEASE.
	wantRule(t, step([]trace.ThreadID{1},
		trace.ThreadInit(1), trace.Release(1, "l")), "RELEASE")
}

func TestStateAccessors(t *testing.T) {
	s := NewState([]trace.ThreadID{1, 2})
	if s.Status(1) != StatusCreated || s.Status(3) != StatusUnknown {
		t.Fatal("initial statuses wrong")
	}
	must := func(op trace.Op) {
		t.Helper()
		if err := s.Step(op); err != nil {
			t.Fatal(err)
		}
	}
	must(trace.ThreadInit(1))
	must(trace.ThreadInit(2))
	must(trace.AttachQ(1))
	if !s.HasQueue(1) || s.HasQueue(2) {
		t.Fatal("HasQueue wrong")
	}
	must(trace.LoopOnQ(1))
	if !s.Looping(1) {
		t.Fatal("Looping(1) = false")
	}
	must(trace.Post(2, "p", 1))
	must(trace.PostDelayed(2, "d", 1, 10))
	if s.QueueLen(1) != 2 {
		t.Fatalf("QueueLen = %d, want 2", s.QueueLen(1))
	}
	must(trace.Begin(1, "p"))
	if s.Current(1) != "p" {
		t.Fatalf("Current = %q, want p", s.Current(1))
	}
	must(trace.Acquire(1, "l"))
	if !s.HoldsLock(1, "l") || s.HoldsLock(2, "l") {
		t.Fatal("HoldsLock wrong")
	}
	if s.Status(1).String() != "running" || StatusUnknown.String() != "unknown" ||
		StatusCreated.String() != "created" || StatusFinished.String() != "finished" {
		t.Fatal("Status strings wrong")
	}
}

func TestStepLeavesStateUnchangedOnError(t *testing.T) {
	s := NewState([]trace.ThreadID{1})
	if err := s.Step(trace.ThreadInit(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(trace.LoopOnQ(1)); err == nil {
		t.Fatal("expected LOOPONQ violation")
	}
	// The failed step must not have marked the thread as looping.
	if s.Looping(1) {
		t.Fatal("state mutated by failed step")
	}
}

func TestValidateFigureTraces(t *testing.T) {
	for name, tr := range map[string]*trace.Trace{
		"figure3": paper.Figure3(),
		"figure4": paper.Figure4(),
	} {
		if i, err := ValidateInferred(tr); err != nil {
			t.Errorf("%s: op %d: %v", name, i, err)
		}
	}
}

func TestValidateReportsIndex(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.Read(1, "x"),
		trace.LoopOnQ(1), // invalid: no queue attached
	})
	i, err := Validate(tr, []trace.ThreadID{1})
	if err == nil || i != 2 {
		t.Fatalf("Validate = (%d, %v), want op 2 failure", i, err)
	}
	if !strings.Contains(err.Error(), "LOOPONQ") {
		t.Fatalf("err = %v", err)
	}
}

func TestInferInitialThreads(t *testing.T) {
	got := InferInitialThreads(paper.Figure3())
	want := map[trace.ThreadID]bool{0: true, 1: true}
	if len(got) != 2 {
		t.Fatalf("initial = %v, want t0 and t1", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected initial thread t%d", id)
		}
	}
}

// TestQuickRandomTracesValidate is the generator/semantics agreement
// property: every randomly generated trace is a valid execution.
func TestQuickRandomTracesValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := RandomTrace(rng, DefaultGenConfig())
		i, err := Validate(tr, []trace.ThreadID{1, 2})
		if err != nil {
			t.Logf("seed %d: op %d: %v", seed, i, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomTracesAnalyze checks that generated traces also pass the
// structural Analyze pass of the trace package.
func TestQuickRandomTracesAnalyze(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := RandomTrace(rng, DefaultGenConfig())
		_, err := trace.Analyze(tr)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
		}
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomTraceDeterminism checks replay determinism: the same seed
// produces the identical trace.
func TestRandomTraceDeterminism(t *testing.T) {
	a := RandomTrace(rand.New(rand.NewSource(7)), DefaultGenConfig())
	b := RandomTrace(rand.New(rand.NewSource(7)), DefaultGenConfig())
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Ops() {
		if a.Op(i) != b.Op(i) {
			t.Fatalf("op %d differs: %v vs %v", i, a.Op(i), b.Op(i))
		}
	}
}
