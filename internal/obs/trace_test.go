package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestParseTraceparent checks the W3C header parser against valid,
// malformed, and spec-invalid (all-zero) inputs.
func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", valid)
	}
	if sc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || sc.SpanID != "00f067aa0ba902b7" {
		t.Fatalf("parsed %+v", sc)
	}
	if sc.Traceparent() != valid {
		t.Fatalf("round trip: got %q want %q", sc.Traceparent(), valid)
	}
	// Unknown versions parse (the spec forward-compat rule).
	if _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"); !ok {
		t.Error("unknown version rejected")
	}
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // too short
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // bad hex
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted a bad header", h)
		}
	}
}

// TestSpanIDsUnique checks the collision-free generator contract the
// stitcher relies on when merging fragments from many processes.
func TestSpanIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if len(id) != 16 || seen[id] {
			t.Fatalf("span id %q duplicate or malformed", id)
		}
		seen[id] = true
	}
	if tid := NewTraceID(); len(tid) != 32 {
		t.Fatalf("trace id %q malformed", tid)
	}
}

func testSpan(traceID, name string) TraceSpan {
	return TraceSpan{TraceID: traceID, SpanID: NewSpanID(), Name: name, Start: time.Now(), Duration: time.Millisecond}
}

// TestSpanStoreRing checks the bounded ring: eviction of the oldest
// trace past capacity, append-on-duplicate-ID (duplicate submissions
// coalescing onto one trace), and newest-first summaries.
func TestSpanStoreRing(t *testing.T) {
	st := NewSpanStore(2)
	ids := []string{NewTraceID(), NewTraceID(), NewTraceID()}
	for _, id := range ids {
		st.put(id, []TraceSpan{testSpan(id, "root")})
	}
	if got := st.Trace(ids[0]); got != nil {
		t.Errorf("oldest trace not evicted: %v", got)
	}
	if got := st.Trace(ids[2]); len(got) != 1 {
		t.Fatalf("newest trace lost: %v", got)
	}
	// A second commit for a stored ID appends instead of splitting.
	st.put(ids[2], []TraceSpan{testSpan(ids[2], "duplicate")})
	if got := st.Trace(ids[2]); len(got) != 2 {
		t.Fatalf("duplicate commit did not append: %d spans", len(got))
	}
	sums := st.Summaries()
	if len(sums) != 2 || sums[0].TraceID != ids[2] || sums[1].TraceID != ids[1] {
		t.Fatalf("summaries not newest-first: %+v", sums)
	}
	if sums[0].Root != "root" || sums[0].Spans != 2 {
		t.Fatalf("summary root wrong: %+v", sums[0])
	}
}

// TestTraceRecTailCapture checks the commit decision: client-sampled
// traces always keep, unsampled traces keep only when forced (slow,
// failed, quarantined), and commit is idempotent.
func TestTraceRecTailCapture(t *testing.T) {
	st := NewSpanStore(8)

	sampled := st.Begin(NewTraceID(), true)
	sp := sampled.StartSpan("server.submit", "")
	sp.SetAttr("job", "j1")
	sp.End()
	sampled.Commit(false)
	if got := st.Trace(sampled.TraceID()); len(got) != 1 || got[0].Attrs["job"] != "j1" {
		t.Fatalf("sampled trace not committed: %v", got)
	}

	fast := st.Begin(NewTraceID(), false)
	fast.StartSpan("job.run", "").End()
	fast.Commit(false)
	if got := st.Trace(fast.TraceID()); got != nil {
		t.Fatalf("unsampled unforced trace committed: %v", got)
	}

	slow := st.Begin(NewTraceID(), false)
	slow.StartSpan("job.run", "").End()
	slow.Commit(true)
	if got := st.Trace(slow.TraceID()); len(got) != 1 {
		t.Fatalf("forced trace not committed: %v", got)
	}

	// A second commit after the decision must not resurrect or duplicate.
	slow.AddSpan("late", "", time.Now(), time.Millisecond)
	slow.Commit(true)
	if got := st.Trace(slow.TraceID()); len(got) != 1 {
		t.Fatalf("idempotent commit violated: %d spans", len(got))
	}

	// Nil recorder and nil span are no-ops end to end.
	var nilRec *TraceRec
	nsp := nilRec.StartSpan("x", "")
	nsp.SetAttr("k", "v")
	nsp.SetErr(fmt.Errorf("boom"))
	nsp.End()
	nilRec.AddSpan("y", "", time.Now(), 0)
	nilRec.Commit(true)
	if nilRec.TraceID() != "" || nsp.ID() != "" {
		t.Error("nil recorder leaked state")
	}
}

// TestDebugTracesEndpoint checks /debug/traces list and by-ID forms
// against the process-wide store.
func TestDebugTracesEndpoint(t *testing.T) {
	id := NewTraceID()
	rec := Traces().Begin(id, true)
	sp := rec.StartSpan("server.submit", "")
	sp.End()
	rec.Commit(false)

	mux := DebugMux(Default())

	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces/"+id, nil))
	if rw.Code != 200 {
		t.Fatalf("by-id: HTTP %d", rw.Code)
	}
	var doc struct {
		TraceID string      `json:"trace_id"`
		Spans   []TraceSpan `json:"spans"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != id || len(doc.Spans) != 1 || doc.Spans[0].Name != "server.submit" {
		t.Fatalf("by-id body: %+v", doc)
	}

	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces", nil))
	if rw.Code != 200 {
		t.Fatalf("list: HTTP %d", rw.Code)
	}
	var list struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range list.Traces {
		if s.TraceID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("list missing trace %s: %+v", id, list.Traces)
	}

	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces/ffffffffffffffffffffffffffffffff", nil))
	if rw.Code != 404 {
		t.Fatalf("unknown trace: HTTP %d", rw.Code)
	}
}

// TestSpanStoreConcurrent hammers one store with concurrent commits,
// duplicate-ID appends, and scrapes; run under -race it proves the
// store and recorder are safe against a scrape mid-eviction.
func TestSpanStoreConcurrent(t *testing.T) {
	st := NewSpanStore(16)
	shared := NewTraceID() // every writer also appends to this ID
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := st.Begin(NewTraceID(), true)
				sp := rec.StartSpan("job.run", "")
				sp.SetAttr("i", "x")
				sp.End()
				rec.Commit(false)
				st.put(shared, []TraceSpan{testSpan(shared, "dup")})
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for _, s := range st.Summaries() {
					st.Trace(s.TraceID)
				}
			}
		}()
	}
	wg.Wait()
	if len(st.Summaries()) == 0 {
		t.Fatal("no traces survived the hammer")
	}
}

// TestHistogramQuantile pins the interpolation estimator against known
// samples: bounds {1,2,4}, 100 observations spread 50/30/20 across the
// buckets. The estimator interpolates within the bucket holding the
// target rank, first bucket from zero, +Inf ranks clamp to the last
// finite bound — the same answers Prometheus's histogram_quantile
// gives for this distribution.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_quantile_seconds", "t", []float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5) // first bucket (≤1)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5) // second bucket (≤2)
	}
	for i := 0; i < 20; i++ {
		h.Observe(3) // third bucket (≤4)
	}
	cases := []struct{ q, want float64 }{
		{0.50, 1.0}, // rank 50 closes the first bucket: 0 + 1*(50/50)
		{0.25, 0.5}, // rank 25 mid-first-bucket: 0 + 1*(25/50)
		{0.80, 2.0}, // rank 80 closes the second bucket: 1 + 1*(30/30)
		{0.90, 3.0}, // rank 90 halfway through the third: 2 + 2*(10/20)
		{0.99, 3.9}, // rank 99: 2 + 2*(19/20)
		{1.00, 4.0}, // top of the last finite bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Rank past every finite bucket clamps to the last finite bound.
	h2 := r.Histogram("test_quantile_inf_seconds", "t", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("+Inf rank: Quantile(0.99) = %v, want 2", got)
	}
	// Empty histogram answers 0.
	h3 := r.Histogram("test_quantile_empty_seconds", "t", []float64{1})
	if got := h3.Quantile(0.5); got != 0 {
		t.Errorf("empty: Quantile(0.5) = %v, want 0", got)
	}
}
