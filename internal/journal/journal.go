// Package journal implements the crash-safe write-ahead journal of the
// resilient analysis service: an append-only file of JSON-line entries
// under a state directory, fsync'd at chunk boundaries, with a recovery
// reader that tolerates the torn tail a hard crash leaves behind.
//
// The journal is what makes exploration campaigns restartable: the
// explorer's DFS work (bound-k event sequences and their per-test race
// results) is the expensive resource worth preserving across failures,
// so every completed unit of work is journaled before the process may
// die. Recovery follows standard WAL discipline: entries are replayed in
// order until the first undecodable line, which is treated as the torn
// tail of an interrupted append and discarded — everything before it was
// fsync'd and is trusted.
//
// Trust is earned, not assumed: every v2 record carries a CRC32C over
// (seq, type, data), written by AppendSeq and verified on replay, so a
// record the disk quietly rotted — still a complete, decodable JSON
// line — is detected as corruption rather than replayed as history.
// Corruption is strictly distinguished from tearing: a torn tail is the
// expected residue of a crash mid-append and is truncated away, while a
// corrupt record means fsync'd, acknowledged state changed under us, so
// recovery stops, keeps only the prefix, and refuses to let a daemon
// resume until an operator (or racedet -fsck) decides what to do.
//
// Durability errors are equally unforgiving: a failed flush or fsync
// poisons the Writer permanently (ErrPoisoned). After a failed fsync
// the kernel may have dropped the dirty pages while clearing the error
// state, so a later "successful" fsync proves nothing about the earlier
// write — the only honest answer is to stop claiming durability until
// the process restarts and recovers from what actually reached the
// disk.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"droidracer/internal/faultinject"
	"droidracer/internal/storage"
)

// Entry is one journal record: a type tag and an opaque payload the
// owning subsystem marshals. Seq is the 1-based position in the journal,
// assigned on append and verified on replay so a corrupted middle (not
// just a torn tail) is detected rather than silently skipped.
type Entry struct {
	Seq  int             `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
	// CRC is the hex CRC32C over (seq, type, data) — WAL v2. Empty on
	// v1 records, which replay unverified for compatibility; AppendSeq
	// always writes it.
	CRC string `json:"crc,omitempty"`
}

// Decode unmarshals the entry payload into v.
func (e Entry) Decode(v any) error {
	if err := json.Unmarshal(e.Data, v); err != nil {
		return fmt.Errorf("journal: entry %d (%s): %w", e.Seq, e.Type, err)
	}
	return nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the entry's CRC32C over (seq, type, data) in a
// canonical framing — the value AppendSeq stores in CRC and recovery
// (and racedet -fsck) verifies. The raw payload bytes are covered, not
// a re-marshaling, so the check is byte-exact against what was written.
func (e Entry) Checksum() string {
	h := crc32.New(castagnoli)
	fmt.Fprintf(h, "%d\x00%s\x00", e.Seq, e.Type)
	h.Write(e.Data)
	return fmt.Sprintf("%08x", h.Sum32())
}

// ChecksumOK reports whether the entry's stored CRC matches its
// content. v1 records (no CRC) vacuously pass.
func (e Entry) ChecksumOK() bool {
	return e.CRC == "" || e.CRC == e.Checksum()
}

// DefaultChunk is the number of appended entries between automatic
// fsyncs. Callers mark durability barriers explicitly with Sync; the
// chunk bound caps how much unsynced work a crash between barriers can
// lose.
const DefaultChunk = 16

// ErrPoisoned marks a Writer that suffered a flush or fsync failure.
// The error is sticky (fsyncgate semantics): after a failed fsync the
// kernel may have dropped the dirty pages, so no later operation on
// this writer can honestly claim durability. Every subsequent Append,
// Sync, and Close fails with an error wrapping ErrPoisoned; recovery
// is a process restart that replays what actually reached the disk.
var ErrPoisoned = errors.New("journal: writer poisoned by an earlier storage failure")

// RecoveryStats quantifies one journal recovery: what was kept, and
// what the torn tail silently cost. A crash mid-append leaves a partial
// final line that recovery must discard; without these numbers that
// data loss is invisible to operators resuming a campaign.
type RecoveryStats struct {
	// Entries is the number of valid entries replayed.
	Entries int
	// DiscardedEntries counts torn-tail lines (usually 0 or 1) dropped
	// after the last valid entry.
	DiscardedEntries int
	// DiscardedBytes is the size of the truncated torn tail.
	DiscardedBytes int64
	// Corrupt counts corrupt records found before recovery stopped —
	// complete, terminated lines whose checksum no longer matches their
	// content or whose sequence number breaks the chain. Always 0 or 1:
	// nothing after the first corrupt record is trusted, including any
	// valid-looking suffix.
	Corrupt int
	// CorruptOffset is the byte offset of the corrupt record, when
	// Corrupt > 0 — where racedet -fsck -repair would cut.
	CorruptOffset int64
}

// Torn reports whether recovery discarded a torn tail.
func (s RecoveryStats) Torn() bool {
	return s.DiscardedEntries > 0 || s.DiscardedBytes > 0
}

// Writer appends entries to a journal file. It is safe for concurrent
// use; appends are serialized internally.
type Writer struct {
	mu        sync.Mutex
	f         storage.File
	bw        *bufio.Writer
	seq       int
	pending   int
	chunk     int
	recovered RecoveryStats
	poisoned  error
}

// Create opens the journal file at path for appending, creating it (and
// its parent directory) when absent. An existing journal is continued:
// the sequence counter resumes after the last recoverable entry, and a
// torn tail from a previous crash is truncated away first. A corrupt
// journal — a checksum-mismatched or out-of-sequence record in the
// durable middle — refuses to open: truncating acknowledged history
// would silently drop work, so the *storage.CorruptError is returned
// for the operator (or racedet -fsck) to resolve.
//
// Kill-point: "journal.create" crashes after the file and its directory
// entry are durable but before the first append — the window where a
// fresh daemon owns an empty journal.
func Create(path string) (*Writer, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	fsys := faultinject.Storage("journal")
	entries, valid, stats, err := recoverFile(fsys, path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	tornEntriesTotal.Add(stats.DiscardedEntries)
	tornBytesTotal.Add(int(stats.DiscardedBytes))
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	// fsync the truncation, then the parent directory: creating (or
	// truncating) the file changes the directory entry, and data fsyncs
	// alone do not make that durable. Without this a host crash right
	// after daemon start can lose the journal file itself — the next
	// incarnation would silently begin from an empty history.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", storage.CountError("journal.sync", err))
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	faultinject.Crash("journal.create")
	return &Writer{f: f, bw: bufio.NewWriter(f), seq: len(entries), chunk: DefaultChunk, recovered: stats}, nil
}

// SyncDir fsyncs a directory, making renames and file creations under it
// durable. The quarantine mover shares it with Create.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s: %w", dir, err)
	}
	return nil
}

// Recovered returns the recovery statistics of the journal this writer
// continued: entries kept and the torn tail discarded, if any.
func (w *Writer) Recovered() RecoveryStats {
	return w.recovered
}

// Seq returns the sequence number of the most recently appended entry
// (or the last recovered one, before the first append). Event logs use
// it to correlate log lines with WAL records.
func (w *Writer) Seq() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Err returns the writer's poison state: nil while the journal is
// healthy, an error wrapping ErrPoisoned after a durability failure.
// The server's readiness probe consults it so a daemon that can no
// longer journal stops advertising itself as ready.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.poisoned
}

// poison records the writer's first durability failure and returns err.
// Callers must hold w.mu.
func (w *Writer) poison(err error) error {
	if w.poisoned == nil {
		w.poisoned = fmt.Errorf("%w: %v", ErrPoisoned, err)
	}
	return err
}

// SetChunk overrides the automatic-fsync chunk size (entries per fsync);
// n <= 1 syncs every append.
func (w *Writer) SetChunk(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n < 1 {
		n = 1
	}
	w.chunk = n
}

// Append marshals data under the given type tag and writes it as one
// journal line. The entry becomes durable at the next chunk boundary or
// explicit Sync, whichever comes first.
func (w *Writer) Append(typ string, data any) error {
	_, err := w.AppendSeq(typ, data)
	return err
}

// AppendSeq is Append returning the sequence number assigned to this
// entry. The number is taken under the writer's own mutex, so it
// identifies exactly this record even with concurrent appenders — a
// later Seq() call could observe another appender's entry. Event logs
// use it to correlate log lines with WAL records.
//
// The error contract is durability-honest: a marshal or write error
// means the entry was not appended, the sequence number is 0, and a
// write failure poisons the writer (a partial line in the buffer would
// corrupt every later record). A failed chunk-boundary fsync returns
// the assigned number *and* a non-nil error: the entry reached the
// file, but it is not durable and never will be provably so — the
// writer is poisoned, and the caller must not acknowledge the unit of
// work this entry records.
//
// Kill-points: "journal.append" crashes after the line is buffered but
// before any sync; "journal.torn" crashes after flushing only half of
// the line to the file, leaving the torn tail recovery must discard.
func (w *Writer) AppendSeq(typ string, data any) (int, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return 0, fmt.Errorf("journal: marshaling %s entry: %w", typ, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.poisoned != nil {
		return 0, w.poisoned
	}
	e := Entry{Seq: w.seq + 1, Type: typ, Data: raw}
	e.CRC = e.Checksum()
	line, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	w.seq++
	line = append(line, '\n')
	if faultinject.Triggered("journal.torn") {
		// Model a crash mid-write: half the line reaches the disk, the
		// rest is lost with the process. The errors cannot reach a
		// caller (the process dies here), but a failed half-write means
		// the chaos premise — a torn tail on disk — did not hold, so it
		// must not vanish silently.
		if _, err := w.bw.Write(line[:len(line)/2]); err != nil {
			fmt.Fprintf(os.Stderr, "journal: torn kill-point half-write failed: %v\n", err)
		}
		if err := w.bw.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "journal: torn kill-point flush failed: %v\n", err)
		}
		if err := w.f.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "journal: torn kill-point sync failed: %v\n", err)
		}
		os.Exit(faultinject.KillExitCode)
	}
	if _, err := w.bw.Write(line); err != nil {
		return 0, w.poison(fmt.Errorf("journal: %w", storage.CountError("journal.write", err)))
	}
	appendsTotal.Inc()
	faultinject.Crash("journal.append")
	w.pending++
	if w.pending >= w.chunk {
		return w.seq, w.sync()
	}
	return w.seq, nil
}

// Sync flushes buffered entries and fsyncs the file — the durability
// barrier callers place after each completed unit of work.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sync()
}

func (w *Writer) sync() error {
	if w.poisoned != nil {
		return w.poisoned
	}
	if err := w.bw.Flush(); err != nil {
		return w.poison(fmt.Errorf("journal: %w", storage.CountError("journal.write", err)))
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return w.poison(fmt.Errorf("journal: fsync: %w", storage.CountError("journal.sync", err)))
	}
	fsyncsTotal.Inc()
	fsyncDur.ObserveDuration(time.Since(start))
	w.pending = 0
	faultinject.Crash("journal.synced")
	return nil
}

// Close syncs and closes the journal file. The final sync error and the
// close error are reported distinctly, joined with errors.Join, so a
// caller (or its logs) can tell "your last entries are not durable"
// from "the descriptor leaked".
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	syncErr := w.sync()
	closeErr := w.f.Close()
	if closeErr != nil {
		closeErr = fmt.Errorf("journal: close: %w", closeErr)
	}
	return errors.Join(syncErr, closeErr)
}

// Recover reads the journal at path, returning every entry before the
// torn tail (if any). A missing file is an empty journal, not an error:
// resuming from a state dir that never got as far as its first sync must
// behave like a fresh start.
func Recover(path string) ([]Entry, error) {
	entries, _, err := RecoverStats(path)
	return entries, err
}

// RecoverStats is Recover plus the recovery statistics: how many
// entries were kept and how many torn-tail lines and bytes were
// discarded, so resume reporting can surface the loss instead of
// swallowing it. A missing file is an empty journal with zero stats.
//
// On corruption (stats.Corrupt > 0) the entries before the corrupt
// record and meaningful stats are returned together with the
// *storage.CorruptError — callers that refuse to proceed still get to
// report exactly what was lost.
func RecoverStats(path string) ([]Entry, RecoveryStats, error) {
	entries, _, stats, err := recoverFile(faultinject.Storage("journal"), path)
	if os.IsNotExist(err) {
		return nil, RecoveryStats{}, nil
	}
	return entries, stats, err
}

// recoverFile reads entries and also reports the byte offset of the end
// of the last valid entry, so Create can truncate a torn tail before
// appending, plus the recovery statistics.
//
// The framing rules draw a hard line between tearing and corruption. A
// final line without its '\n' terminator is torn by definition — the
// writer always line-frames records — even when its bytes happen to
// decode; so is a terminated but undecodable last line. A *terminated,
// decodable* line whose checksum mismatches its content or whose
// sequence number breaks the chain is corruption: that line was fully
// written and fsync'd once, and now reads back different. Recovery
// stops there with a *storage.CorruptError; everything after the
// corrupt record — however valid it looks — is untrusted.
func recoverFile(fsys storage.FS, path string) ([]Entry, int64, RecoveryStats, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, 0, RecoveryStats{}, err
	}
	defer f.Close()
	var entries []Entry
	var valid int64
	var stats RecoveryStats
	corrupt := func(ce *storage.CorruptError) ([]Entry, int64, RecoveryStats, error) {
		stats.Entries = len(entries)
		stats.Corrupt = 1
		stats.CorruptOffset = valid
		corruptRecordsTotal.Inc()
		return entries, valid, stats, ce
	}
	r := bufio.NewReaderSize(f, 64*1024)
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			// line, if non-empty, is an unterminated (torn) tail.
			if len(line) > 0 {
				stats.DiscardedEntries++
				stats.DiscardedBytes += int64(len(line))
			}
			stats.Entries = len(entries)
			return entries, valid, stats, nil
		}
		if err != nil {
			return nil, 0, RecoveryStats{}, fmt.Errorf("journal: %s: %w", path, storage.CountError("journal.read", err))
		}
		var e Entry
		uerr := json.Unmarshal([]byte(line), &e)
		switch {
		case uerr == nil && e.Seq == len(entries)+1 && e.ChecksumOK():
			entries = append(entries, e)
			valid += int64(len(line))
		case uerr == nil && e.Seq == len(entries)+1:
			// Right position, wrong checksum: the record was completely
			// written (it has its terminator) and has since changed —
			// bit rot, not a torn append.
			return corrupt(&storage.CorruptError{
				Path: path, Seq: e.Seq, Offset: valid,
				Want: e.CRC, Got: e.Checksum(),
			})
		case uerr == nil && e.Seq != 0:
			// A decodable entry with the wrong sequence number is not a
			// torn tail — the journal middle is corrupt and resuming
			// from it could silently drop work.
			return corrupt(&storage.CorruptError{
				Path: path, Seq: e.Seq, Offset: valid,
				Reason: fmt.Sprintf("out-of-sequence (want %d)", len(entries)+1),
			})
		default:
			// Undecodable line. If it is the last line it is the torn
			// tail of an interrupted append and is discarded; if data
			// follows it, it cannot be a tear — appends are strictly
			// sequential, so a mangled middle is corruption.
			if _, perr := r.Peek(1); perr == nil {
				return corrupt(&storage.CorruptError{
					Path: path, Seq: len(entries) + 1, Offset: valid,
					Reason: "undecodable record in journal middle",
				})
			}
			stats.DiscardedEntries++
			stats.DiscardedBytes += int64(len(line))
			stats.Entries = len(entries)
			return entries, valid, stats, nil
		}
	}
}
