package explorer

import (
	"fmt"
	"math/rand"

	"droidracer/internal/android"
)

// RandomOptions bound a random exploration run.
type RandomOptions struct {
	// Events is the number of events to fire per run.
	Events int
	// Runs is the number of independent runs.
	Runs int
	// Seed seeds both event choice and, per run, the scheduler.
	Seed int64
}

// RandomExplore is a Dynodroid/Monkey-style tester (§7's comparison
// points): it fires uniformly random enabled events instead of
// enumerating sequences, and — unlike the systematic explorer — offers no
// replay database; the recorded Test sequences are the only way to
// reproduce a run. Each run uses a distinct scheduling seed.
func RandomExplore(factory AppFactory, opts RandomOptions) (*Result, error) {
	if opts.Events <= 0 || opts.Runs <= 0 {
		return nil, fmt.Errorf("explorer: random exploration needs positive Events and Runs")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{}
	for run := 0; run < opts.Runs; run++ {
		schedSeed := opts.Seed + int64(run)
		env, err := factory(schedSeed)
		if err != nil {
			return nil, err
		}
		if err := env.Run(); err != nil {
			return nil, fmt.Errorf("explorer: random run %d: %w", run, err)
		}
		var seq []android.UIEvent
		for len(seq) < opts.Events {
			enabled := env.EnabledEvents()
			if len(enabled) == 0 {
				break
			}
			ev := enabled[rng.Intn(len(enabled))]
			if err := env.Fire(ev); err != nil {
				env.Close()
				return nil, fmt.Errorf("explorer: random run %d: fire %v: %w", run, ev, err)
			}
			seq = append(seq, ev)
			res.EventsFired++
			eventsFiredTotal.Inc()
			if err := env.Run(); err != nil {
				return nil, fmt.Errorf("explorer: random run %d: %w", run, err)
			}
		}
		if err := env.Shutdown(); err != nil {
			return nil, fmt.Errorf("explorer: random run %d: shutdown: %w", run, err)
		}
		res.SequencesExplored++
		res.Tests = append(res.Tests, Test{
			Sequence:      seq,
			Trace:         env.Trace(),
			SystemThreads: env.SystemThreads(),
		})
	}
	return res, nil
}
