package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/journal"
	"droidracer/internal/report"
)

// Quarantine is the dead-letter destination for poison inputs: jobs that
// fail deterministically after the supervisor has exhausted retries
// (parse errors, isolated panics) are journaled as quarantined and their
// input file is moved here, so a restarted daemon never re-ingests them.
// Transient failures — budget exhaustion, cancellation — are never
// quarantined: those degrade or are retried by the next incarnation.
type Quarantine struct {
	// Dir is the quarantine directory (created on first use).
	Dir string
}

// quarantineEntryType is the journal entry type of a dead-letter record.
const quarantineEntryType = "quarantine"

// QuarantineEntry is the journal payload recorded per dead-lettered job.
// TraceID correlates the dead-letter record with the committed trace of
// the analysis that proved the input poisonous (quarantined jobs always
// tail-capture).
type QuarantineEntry struct {
	Name    string `json:"name"`
	Reason  string `json:"reason"`
	TraceID string `json:"trace_id,omitempty"`
}

// Absorb moves the input file at path into the quarantine directory and
// fsyncs both directories, so the move survives a crash. A missing
// source is not an error: a previous incarnation may have crashed after
// journaling the dead-letter entry but before (or after) the rename, and
// replaying the quarantine must converge.
func (q *Quarantine) Absorb(path string) error {
	if path == "" {
		return nil
	}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil
	}
	if err := os.MkdirAll(q.Dir, 0o777); err != nil {
		return fmt.Errorf("jobs: quarantine: %w", err)
	}
	dst := filepath.Join(q.Dir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		return fmt.Errorf("jobs: quarantine: %w", err)
	}
	if err := journal.SyncDir(q.Dir); err != nil {
		return err
	}
	return journal.SyncDir(filepath.Dir(path))
}

// Poisonous reports whether an outcome marks its input as poison: the
// job failed with no result at all, and the failure is deterministic —
// a recovered panic or a plain error such as a parse failure — rather
// than an exhausted budget or a cancellation, which a later attempt
// under different load could survive.
func Poisonous(out report.Outcome) bool {
	if out.Err == nil || out.Result != nil || out.JobState == report.JobDrained {
		return false
	}
	if _, ok := budget.AsError(out.Err); ok {
		return false
	}
	return true
}

// QuarantinedJobs extracts the dead-lettered job names (with the failure
// that condemned them) from journal entries, so a restarted daemon skips
// them instead of re-ingesting a poison input forever.
func QuarantinedJobs(entries []journal.Entry) map[string]string {
	out := make(map[string]string)
	for _, e := range entries {
		if e.Type != quarantineEntryType {
			continue
		}
		var qe QuarantineEntry
		if err := e.Decode(&qe); err != nil {
			continue
		}
		out[qe.Name] = qe.Reason
	}
	return out
}

// ResultDigest fingerprints a result's race set: a short stable hash
// over the sorted (category, location, op pair) tuples. Identical inputs
// analyzed by different incarnations produce identical digests, which is
// how the ingestion layer proves idempotent resubmission converged to
// the same races without storing full reports in the journal.
func ResultDigest(res *core.Result) string {
	if res == nil {
		return ""
	}
	lines := make([]string, 0, len(res.Races))
	for _, r := range res.Races {
		lines = append(lines, fmt.Sprintf("%s|%s|%d|%d", r.Category, r.Loc, r.First, r.Second))
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		fmt.Fprintln(h, l)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
