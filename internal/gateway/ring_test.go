package gateway

import (
	"fmt"
	"testing"
)

func TestRingOrderCoversAllBackends(t *testing.T) {
	backends := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(backends)
	order := r.Order("somekey")
	if len(order) != len(backends) {
		t.Fatalf("Order returned %d backends, want %d: %v", len(order), len(backends), order)
	}
	seen := map[string]bool{}
	for _, b := range order {
		if seen[b] {
			t.Fatalf("duplicate backend %s in order %v", b, order)
		}
		seen[b] = true
	}
}

func TestRingDeterministic(t *testing.T) {
	backends := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(backends)
	// Construction is order-insensitive and stable across instances.
	r2 := NewRing([]string{"http://c:3", "http://a:1", "http://b:2"})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		if got, want := r1.Order(key)[0], r2.Order(key)[0]; got != want {
			t.Fatalf("key %s: home %s vs %s across construction orders", key, got, want)
		}
	}
}

func TestRingBalance(t *testing.T) {
	backends := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(backends)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Order(fmt.Sprintf("key-%d", i))[0]]++
	}
	for b, c := range counts {
		// With 64 vnodes the worst backend should stay within 2× of fair
		// share; this guards against a broken hash, not perfect balance.
		if c < n/6 || c > n/2 {
			t.Fatalf("backend %s owns %d/%d keys — ring badly unbalanced: %v", b, c, n, counts)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	full := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"})
	reduced := NewRing([]string{"http://a:1", "http://b:2"})
	moved := 0
	const n = 1000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		home := full.Order(key)[0]
		if home == "http://c:3" {
			continue // its keys must move somewhere
		}
		if reduced.Order(key)[0] != home {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed backend changed home", moved)
	}
}

func TestRingFailoverFollowsOrder(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"})
	order := r.Order("the-key")
	// The failover target is the next distinct backend in ring order;
	// re-asking must give the identical walk.
	for i := 0; i < 5; i++ {
		again := r.Order("the-key")
		for j := range order {
			if again[j] != order[j] {
				t.Fatalf("unstable order: %v vs %v", again, order)
			}
		}
	}
}
