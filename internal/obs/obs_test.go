package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", "kind", "read")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("test_ops_total", "ops", "kind", "read") != c {
		t.Fatal("re-lookup returned a different counter")
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Dec()
	g.Add(2)
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %d, want 8", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 8 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(20)
	if got := g.Value(); got != 20 {
		t.Fatalf("SetMax = %d, want 20", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "", "b", "2", "a", "1")
	b := r.Counter("test_total", "", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering test_x as a gauge did not panic")
		}
	}()
	r.Gauge("test_x", "")
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got < 5.6 || got > 5.61 {
		t.Fatalf("sum = %g, want ~5.605", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.01"} 1`,
		`test_lat_seconds_bucket{le="0.1"} 3`,
		`test_lat_seconds_bucket{le="1"} 4`,
		`test_lat_seconds_bucket{le="+Inf"} 5`,
		`test_lat_seconds_count 5`,
		"# TYPE test_lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusStableAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees", "k", "1").Inc()
	r.Counter("b_total", "bees", "k", "2").Add(2)
	r.Gauge("a_gauge", "ays").Set(-3)
	var b1, b2 bytes.Buffer
	r.WritePrometheus(&b1)
	r.WritePrometheus(&b2)
	if b1.String() != b2.String() {
		t.Fatal("exposition not stable across scrapes")
	}
	out := b1.String()
	// Families sorted: a_gauge before b_total; HELP/TYPE present.
	ai, bi := strings.Index(out, "a_gauge"), strings.Index(out, "b_total")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("families unsorted:\n%s", out)
	}
	for _, want := range []string{
		"# HELP a_gauge ays", "# TYPE a_gauge gauge", "a_gauge -3",
		`b_total{k="1"} 1`, `b_total{k="2"} 2`, "# TYPE b_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Series are registered at runtime (e.g. a phase histogram on first
// sight of a new phase label), so a scrape must tolerate families
// growing under it. Run under -race this used to catch WritePrometheus
// iterating a family's series map outside the registry lock.
func TestWritePrometheusConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	// Prefill so each render is long enough to be preempted mid-walk
	// even on GOMAXPROCS=1, where the registering goroutine otherwise
	// only runs between scrapes.
	for i := 0; i < 20000; i++ {
		r.Counter("test_grow_total", "grows", "i", "pre"+strconv.Itoa(i)).Inc()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			// Fresh label values each round so every lookup inserts a
			// new series into the family maps the scraper is walking.
			id := strconv.Itoa(i)
			r.Counter("test_grow_total", "grows", "i", id).Inc()
			r.Histogram("test_grow_seconds", "", []float64{1}, "i", id).Observe(0.5)
		}
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	if got := h.Sum(); got != 4000 {
		t.Fatalf("sum = %g, want 4000", got)
	}
}

func TestPhasesSpans(t *testing.T) {
	reg := NewRegistry()
	p := NewPhasesIn(reg)
	sp := p.Start("parse")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatal("span duration not positive")
	}
	if again := sp.End(); again != 0 {
		t.Fatal("second End re-recorded")
	}
	p.Record("hb", 2*time.Second)
	ts := p.Timings()
	if len(ts) != 2 || ts[0].Phase != "parse" || ts[1].Phase != "hb" {
		t.Fatalf("timings = %+v", ts)
	}
	if Total(ts) < 2*time.Second {
		t.Fatalf("Total = %v", Total(ts))
	}
	// The histogram mirror landed in reg.
	h := reg.Histogram("droidracer_phase_duration_seconds", "", DurationBuckets(), "phase", "hb")
	if h.Count() != 1 {
		t.Fatalf("phase histogram count = %d, want 1", h.Count())
	}
	// Nil collector is a safe no-op.
	var nilP *Phases
	nilP.Start("x").End()
	nilP.Record("y", time.Second)
	if nilP.Timings() != nil {
		t.Fatal("nil Phases returned timings")
	}
}

func TestEventLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf, "run-1")
	log.Info("job.finish", "job", "t1.txt", "journal_seq", 7)
	log.Info("daemon.shutdown")
	raw := buf.String()
	sc := bufio.NewScanner(strings.NewReader(raw))
	n := 0
	for sc.Scan() {
		n++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		if rec["run"] != "run-1" {
			t.Fatalf("line %d missing run id: %v", n, rec)
		}
	}
	if n != 2 {
		t.Fatalf("got %d JSONL lines, want 2", n)
	}
	if !strings.Contains(raw, `"journal_seq":7`) {
		t.Fatalf("event missing journal_seq: %s", raw)
	}
}

func TestNewRunIDUnique(t *testing.T) {
	if NewRunID() == NewRunID() {
		t.Fatal("consecutive run IDs collide")
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_served_total", "").Inc()
	srv := httptest.NewServer(DebugMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "test_served_total 1") {
		t.Fatalf("/metrics = %d, %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "droidracer") {
		t.Fatalf("/debug/vars = %d, missing droidracer snapshot: %.200s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServeDebug(t *testing.T) {
	srv, addr, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
