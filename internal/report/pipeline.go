package report

import (
	"errors"
	"fmt"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/obs"
	"droidracer/internal/race"
)

// Outcome is one analyzed trace's final state as the hardened pipeline
// leaves it: a full result, a degraded result, a partial result with a
// budget error, or a bare error. Every combination renders to a row —
// the "always produce a report" guarantee at the reporting layer.
type Outcome struct {
	// Name labels the trace or app.
	Name string
	// Result is the analysis result; may be nil (hard failure) or
	// partial (alongside a budget error).
	Result *core.Result
	// Err is the error the pipeline returned, nil on success.
	Err error

	// The fields below are set by the jobs supervisor for work it
	// managed; they are zero for plain per-trace analyses.

	// JobState is the supervisor's disposition for a job that never ran
	// to an analysis verdict: JobQueued (still waiting at shutdown),
	// JobShed (rejected by admission control), JobDrained (checkpointed
	// and requeued for a future resume during graceful shutdown), or
	// JobQuarantined (failed deterministically and dead-lettered — unlike
	// every other non-terminal state, it will never be retried). Empty
	// for jobs that produced a Result or Err.
	JobState string
	// Attempts counts supervised execution attempts; values above 1 mean
	// the job was retried.
	Attempts int
	// Resumed marks a job whose result includes work recovered from a
	// checkpoint journal rather than recomputed.
	Resumed bool
	// TraceID is the distributed trace the job's spans were recorded
	// under (see obs.TraceRec); it flows into journal records and
	// duplicate-submission replies so results stay correlated with the
	// trace that produced them. Empty for unsupervised analyses.
	TraceID string
}

// Supervisor job states rendered in the Mode column. JobQuarantined is
// terminal: the input was dead-lettered and a restart never re-ingests
// it, which the report must distinguish from a plain failure that the
// next incarnation would retry.
const (
	JobQueued      = "queued"
	JobShed        = "shed"
	JobDrained     = "drained"
	JobQuarantined = "quarantined"
)

// mode summarizes how the outcome's analysis ended. Supervisor states
// replace the analysis mode (those jobs have no verdict); retry and
// resume annotate it, e.g. "full+retried" or "degraded+resumed".
func (o Outcome) mode() string {
	if o.JobState != "" {
		return o.JobState
	}
	m := ""
	switch {
	case o.Result != nil && o.Result.Degraded:
		m = "degraded"
	case o.Err != nil && o.Result != nil:
		m = "partial"
	case o.Err != nil:
		m = "error"
	default:
		m = "full"
	}
	if o.Attempts > 1 {
		m += "+retried"
	}
	if o.Resumed {
		m += "+resumed"
	}
	return m
}

// detail renders the reason column: the budget resource, the panic
// stage, or the error text.
func (o Outcome) detail() string {
	err := o.Err
	if err == nil && o.Result != nil {
		err = o.Result.DegradedReason
	}
	if err == nil {
		return ""
	}
	var pe *budget.PanicError
	if errors.As(err, &pe) {
		return fmt.Sprintf("panic in %s", pe.Stage)
	}
	if be, ok := budget.AsError(err); ok {
		return fmt.Sprintf("budget: %s", be.Resource)
	}
	return err.Error()
}

// Pipeline renders one row per outcome: name, mode
// (full/degraded/partial/error), race count, and the reason. Degraded
// and partial rows keep their (baseline or incomplete) race counts, so
// a budget-limited batch still yields a usable report. When any outcome
// carries per-phase timings a Time column is added (total analysis
// wall-clock per row); reports without timings render exactly as
// before.
func Pipeline(outcomes []Outcome) string {
	timed := false
	for _, o := range outcomes {
		if o.Result != nil && len(o.Result.Phases) > 0 {
			timed = true
			break
		}
	}
	header := []string{"Trace", "Mode", "Races"}
	if timed {
		header = append(header, "Time")
	}
	t := &table{header: append(header, "Reason")}
	for _, o := range outcomes {
		races := "-"
		if o.Result != nil {
			races = fmt.Sprintf("%d", len(o.Result.Races))
		}
		row := []string{o.Name, o.mode(), races}
		if timed {
			cell := "-"
			if o.Result != nil && len(o.Result.Phases) > 0 {
				cell = formatDuration(obs.Total(o.Result.Phases))
			}
			row = append(row, cell)
		}
		t.addRow(append(row, o.detail())...)
	}
	return t.String()
}

// PhaseTable renders per-phase wall-clock timings (racedet
// -phase-timings) with a trailing total row.
func PhaseTable(timings []obs.PhaseTiming) string {
	t := &table{header: []string{"Phase", "Time"}}
	for _, pt := range timings {
		t.addRow(pt.Phase, formatDuration(pt.Duration))
	}
	t.addRow("total", formatDuration(obs.Total(timings)))
	return t.String()
}

// PhaseTableQuantiles renders PhaseTable with three extra columns —
// p50/p90/p99 of the process-wide phase-duration histogram, as supplied
// by the quantiles callback (obs.PhaseQuantiles in the CLIs) — for
// phases with observations. When no phase has histogram data the plain
// PhaseTable renders instead, so reports without a metrics consumer are
// byte-identical to before.
func PhaseTableQuantiles(timings []obs.PhaseTiming, quantiles func(phase string) (p50, p90, p99 time.Duration, ok bool)) string {
	any := false
	if quantiles != nil {
		for _, pt := range timings {
			if _, _, _, ok := quantiles(pt.Phase); ok {
				any = true
				break
			}
		}
	}
	if !any {
		return PhaseTable(timings)
	}
	t := &table{header: []string{"Phase", "Time", "p50", "p90", "p99"}}
	for _, pt := range timings {
		row := []string{pt.Phase, formatDuration(pt.Duration), "-", "-", "-"}
		if p50, p90, p99, ok := quantiles(pt.Phase); ok {
			row[2], row[3], row[4] = formatDuration(p50), formatDuration(p90), formatDuration(p99)
		}
		t.addRow(row...)
	}
	t.addRow("total", formatDuration(obs.Total(timings)), "-", "-", "-")
	return t.String()
}

// formatDuration renders a duration at millisecond-friendly precision:
// sub-second values in fractional milliseconds, the rest in seconds.
func formatDuration(d time.Duration) string {
	if d < time.Second {
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// PipelineSummaries tallies race categories per outcome, skipping
// outcomes without results.
func PipelineSummaries(outcomes []Outcome) map[string]race.Summary {
	m := make(map[string]race.Summary)
	for _, o := range outcomes {
		if o.Result == nil {
			continue
		}
		m[o.Name] = race.Summarize(o.Result.Races)
	}
	return m
}
