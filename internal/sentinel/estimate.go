package sentinel

import (
	"bytes"

	"droidracer/internal/trace"
)

// Estimate is the admission-time cost prediction for one submitted
// trace body, derived from a single cheap line scan — no parse, no
// allocation proportional to the input. It is returned in the body of a
// 413 cost-exceeded rejection so the client learns why.
type Estimate struct {
	// Ops counts operation lines; Threads the distinct thread IDs seen;
	// Posts the post/postf/postd lines (each is a cross-thread edge the
	// closure must propagate).
	Ops     int `json:"ops"`
	Threads int `json:"threads"`
	Posts   int `json:"posts"`
	// Nodes over-approximates the happens-before graph size after §6
	// node merging: every non-access op is its own node, and a run of
	// consecutive same-thread accesses collapses to one. The real merge
	// is at least this aggressive (it also merges across our run
	// breaks), so Nodes ≥ the graph the engine will build.
	Nodes int `json:"nodes"`
	// MemBytes predicts the analysis footprint, dominated by the two
	// O(nodes²) reachability bitset matrices (st and mt: nodes rows of
	// ceil(nodes/64) words each).
	MemBytes int64 `json:"mem_bytes"`
	// StreamBytes predicts the same trace's footprint under the
	// streaming engine, which keeps no graph: per-op shadow-state
	// entries plus per-thread clock contexts, linear in the trace. A
	// trace whose closure no ceiling admits can still be cheap here —
	// the hostile alternating-thread shape that maximizes graph nodes
	// is exactly the shape the streaming engine handles in O(ops).
	StreamBytes int64 `json:"stream_bytes"`
}

// CostLimits are the admission ceilings over Estimate.MemBytes.
type CostLimits struct {
	// Soft flags submissions heavy: they run isolated in a worker
	// subprocess instead of on the daemon's heap. 0 disables.
	Soft int64
	// Hard rejects submissions outright with 413 cost-exceeded. 0
	// disables.
	Hard int64
}

// Enabled reports whether any ceiling is configured.
func (c CostLimits) Enabled() bool { return c.Soft > 0 || c.Hard > 0 }

// Cost classes an Estimate falls into under CostLimits.
const (
	ClassNormal   = "normal"
	ClassHeavy    = "heavy"
	ClassRejected = "rejected"
)

// Classify buckets the estimate under the graph engine's quadratic
// cost model: rejected above Hard, heavy above Soft, normal otherwise.
func (e Estimate) Classify(lim CostLimits) string {
	return e.classify(lim, e.MemBytes)
}

// ClassifyEngine buckets the estimate under the cost model of the
// engine that will actually run: the linear StreamBytes when stream is
// true, the quadratic closure model otherwise. The ceilings are the
// same — what changes per engine is the predicted footprint, so a
// submission the graph engine would 413 can admit as normal work when
// the request selects the streaming engine.
func (e Estimate) ClassifyEngine(lim CostLimits, stream bool) string {
	if stream {
		return e.classify(lim, e.StreamBytes)
	}
	return e.classify(lim, e.MemBytes)
}

func (e Estimate) classify(lim CostLimits, cost int64) string {
	switch {
	case lim.Hard > 0 && cost > lim.Hard:
		estimateCounters[ClassRejected].Inc()
		return ClassRejected
	case lim.Soft > 0 && cost > lim.Soft:
		estimateCounters[ClassHeavy].Inc()
		return ClassHeavy
	default:
		estimateCounters[ClassNormal].Inc()
		return ClassNormal
	}
}

// EstimateBytes predicts the analysis cost of a textual trace body. It
// first validates any declared-size directive (trace.DeclaredOps) — a
// declared count the bytes cannot back is a memory bomb aimed at the
// parser's preallocation, surfaced as the *trace.SizeError the server
// maps to 422 — then scans line by line, tracking access runs per the
// node-merging rule so Nodes over-approximates the real graph.
func EstimateBytes(body []byte) (Estimate, error) {
	if _, err := trace.DeclaredOps(body); err != nil {
		return Estimate{}, err
	}
	var est Estimate
	threads := make(map[int]struct{}, 8)
	lastAccessThread := -1 // thread of an open access run, -1 = none
	rest := body
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		line := rest
		if nl >= 0 {
			line = rest[:nl]
			rest = rest[nl+1:]
		} else {
			rest = nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		est.Ops++
		access := bytes.HasPrefix(line, []byte("read(")) || bytes.HasPrefix(line, []byte("write("))
		if bytes.HasPrefix(line, []byte("post")) {
			est.Posts++
		}
		thr := lineThread(line)
		if thr >= 0 {
			threads[thr] = struct{}{}
		}
		if access {
			if thr != lastAccessThread || thr < 0 {
				est.Nodes++ // a new access run opens a new merged node
			}
			lastAccessThread = thr
		} else {
			est.Nodes++
			lastAccessThread = -1
		}
	}
	est.Threads = len(threads)
	est.MemBytes = closureBytes(est.Nodes, est.Ops)
	est.StreamBytes = streamBytes(est.Ops, est.Threads)
	return est, nil
}

// closureBytes models the footprint of a full-fidelity analysis over n
// graph nodes and total ops: two n×n reachability bitset matrices (the
// st and mt relations, 8-byte words, 64 bits each) plus linear node and
// op bookkeeping.
func closureBytes(nodes, ops int) int64 {
	n := int64(nodes)
	words := (n + 63) / 64
	const relations = 2 // st and mt
	return relations*n*words*8 + n*128 + int64(ops)*96
}

// streamBytes models the streaming engine's footprint: one parsed op
// plus at most one shadow-state entry per trace line (epoch, index,
// per-location bookkeeping), and per-thread clock contexts whose width
// is bounded by the live context count, not the trace length. The
// model is linear by construction — the engine materializes no
// relation — so it has no term that grows with nodes².
func streamBytes(ops, threads int) int64 {
	const (
		perOp     = 160      // parsed op + shadow entry + summary-clock share
		perThread = 16 << 10 // root/task contexts and their clock maps
		fixed     = 1 << 20  // engine bookkeeping floor
	)
	return int64(ops)*perOp + int64(threads)*perThread + fixed
}

// lineThread extracts the first thread ID of an op line — the digits
// after "(t" — without allocating. Returns -1 when the line does not
// carry one (malformed lines are the parser's problem, not the
// estimator's).
func lineThread(line []byte) int {
	open := bytes.IndexByte(line, '(')
	if open < 0 || open+2 >= len(line) || line[open+1] != 't' {
		return -1
	}
	n := 0
	digits := 0
	for _, c := range line[open+2:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
		if digits++; digits > 9 {
			return -1
		}
	}
	if digits == 0 {
		return -1
	}
	return n
}
