package explorer_test

import (
	"context"
	"testing"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/explorer"
	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// unconfirmableRace replays the ad-hoc-synchronized app and returns its
// reported-but-never-reorderable race, so retry rounds always run to
// exhaustion unless something interrupts them.
func unconfirmableRace(t *testing.T) (explorer.AppFactory, *trace.Info, race.Race) {
	t.Helper()
	factory := flagOrderedFactory()
	tr, err := explorer.Replay(factory, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	races := race.NewDetector(hb.Build(info, hb.DefaultConfig())).Detect()
	if len(races) != 1 {
		t.Fatalf("races = %v", races)
	}
	return factory, info, races[0]
}

func TestVerifyRetryCancelledBetweenRounds(t *testing.T) {
	factory, info, r := unconfirmableRace(t)
	ctx, cancel := context.WithCancel(context.Background())
	policy := explorer.RetryPolicy{
		Retries:          5,
		AttemptsPerRound: 2,
		BaseBackoff:      time.Millisecond,
		// Cancellation arrives while the verifier is backing off between
		// rounds; it must be honored before the next round of replays.
		Sleep: func(time.Duration) { cancel() },
	}
	v, err := explorer.VerifyRaceWithRetryContext(ctx, factory, nil, info, r, policy)
	be, ok := budget.AsError(err)
	if !ok || !be.Canceled() {
		t.Fatalf("err = %v, want canceled budget error", err)
	}
	if v.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (cancelled before round 2)", v.Rounds)
	}
	if v.Attempts != policy.AttemptsPerRound {
		t.Fatalf("attempts = %d, want %d", v.Attempts, policy.AttemptsPerRound)
	}
	if v.Confirmed {
		t.Fatal("cancelled verification reported confirmation")
	}
}

func TestVerifyRetryPreCancelledRunsNoReplays(t *testing.T) {
	factory, info, r := unconfirmableRace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := explorer.VerifyRaceWithRetryContext(ctx, factory, nil, info, r,
		explorer.RetryPolicy{Retries: 2, AttemptsPerRound: 3})
	be, ok := budget.AsError(err)
	if !ok || !be.Canceled() {
		t.Fatalf("err = %v, want canceled budget error", err)
	}
	if v.Rounds != 0 || v.Attempts != 0 {
		t.Fatalf("pre-cancelled verification did work: %+v", v)
	}
}

func TestVerifyRetryDeadlineIsWallClockResource(t *testing.T) {
	factory, info, r := unconfirmableRace(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := explorer.VerifyRaceWithRetryContext(ctx, factory, nil, info, r,
		explorer.RetryPolicy{AttemptsPerRound: 1})
	be, ok := budget.AsError(err)
	if !ok || be.Resource != budget.ResourceWallClock {
		t.Fatalf("err = %v, want wall-clock budget error", err)
	}
}
