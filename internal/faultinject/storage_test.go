package faultinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"droidracer/internal/storage"
)

func TestParseStorageFaults(t *testing.T) {
	got := ParseStorageFaults("journal.sync:enospc:2, spool.read:flip ,bogus,x:y,spool.write:short:3-5")
	want := []StorageFault{
		{Scope: "journal", Op: "sync", Kind: "enospc", From: 2},
		{Scope: "spool", Op: "read", Kind: "flip", From: 1},
		{Scope: "spool", Op: "write", Kind: "short", From: 3, Until: 5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestStorageUnarmedIsPassthrough(t *testing.T) {
	t.Setenv(EnvStorageFault, "")
	if Storage("journal") != storage.OS {
		t.Fatal("unarmed scope did not return the OS layer")
	}
	t.Setenv(EnvStorageFault, "spool.read:flip")
	if Storage("journal") != storage.OS {
		t.Fatal("fault for another scope leaked")
	}
	if Storage("spool") == storage.OS {
		t.Fatal("armed scope returned the OS layer")
	}
}

func TestFaultFSSyncENOSPCFromNthHit(t *testing.T) {
	ResetStorageHits()
	fsys := NewFaultFS(storage.OS, "journal", []StorageFault{
		{Scope: "journal", Op: "sync", Kind: "enospc", From: 2},
	})
	f, err := fsys.OpenFile(filepath.Join(t.TempDir(), "j"), os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("hit 1 should pass: %v", err)
	}
	// From hit 2 the fault is persistent: a full disk does not heal
	// between retries.
	for hit := 2; hit <= 4; hit++ {
		err := f.Sync()
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("hit %d: want ENOSPC, got %v", hit, err)
		}
		if storage.Kind(err) != "enospc" {
			t.Fatalf("hit %d misclassified: %v", hit, err)
		}
	}
}

func TestFaultFSBoundedWindowHeals(t *testing.T) {
	ResetStorageHits()
	fsys := NewFaultFS(storage.OS, "spool", []StorageFault{
		{Scope: "spool", Op: "sync", Kind: "enospc", From: 1, Until: 2},
	})
	f, err := fsys.OpenFile(filepath.Join(t.TempDir(), "s"), os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for hit := 1; hit <= 2; hit++ {
		if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("hit %d: want ENOSPC, got %v", hit, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("fault should have cleared after its window: %v", err)
	}
}

func TestFaultFSBitFlipOnReadFile(t *testing.T) {
	ResetStorageHits()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	body := []byte("begin(t1)\nend(t1)\n")
	if err := os.WriteFile(path, body, 0o666); err != nil {
		t.Fatal(err)
	}
	fsys := NewFaultFS(storage.OS, "spool", []StorageFault{
		{Scope: "spool", Op: "read", Kind: "flip", From: 2},
	})
	clean, err := fsys.ReadFile(path)
	if err != nil || string(clean) != string(body) {
		t.Fatalf("hit 1 should read clean: %q, %v", clean, err)
	}
	flipped, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(flipped) == string(body) {
		t.Fatal("hit 2 read back unflipped bytes")
	}
	if storage.VerifyBody(storage.Key(body)+".trace", flipped) == nil {
		t.Fatal("flip not caught by content verification")
	}
	// The on-disk file is untouched: the flip models a read-path fault,
	// not a write.
	disk, _ := os.ReadFile(path)
	if string(disk) != string(body) {
		t.Fatal("flip leaked to disk")
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	ResetStorageHits()
	fsys := NewFaultFS(storage.OS, "journal", []StorageFault{
		{Scope: "journal", Op: "write", Kind: "short", From: 1, Until: 1},
	})
	path := filepath.Join(t.TempDir(), "j")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, io.ErrShortWrite) || n != 5 {
		t.Fatalf("want short write of 5, got n=%d err=%v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	disk, _ := os.ReadFile(path)
	if string(disk) != "01234" {
		t.Fatalf("disk has %q, want the torn half", disk)
	}
}

func TestFaultFSFailedRename(t *testing.T) {
	ResetStorageHits()
	dir := t.TempDir()
	src := filepath.Join(dir, ".x.tmp")
	if err := os.WriteFile(src, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	fsys := NewFaultFS(storage.OS, "spool", []StorageFault{
		{Scope: "spool", Op: "rename", Kind: "fail", From: 1},
	})
	if err := fsys.Rename(src, filepath.Join(dir, "x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want injected EIO, got %v", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatal("failed rename moved the file anyway")
	}
}
