// Quickstart: define a small Android application model, run it under the
// simulated runtime, and analyze the execution trace for data races.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"droidracer"
)

// settingsActivity saves a preference from a button handler on a
// background thread while the UI re-reads it — a classic unsynchronized
// hand-off.
type settingsActivity struct {
	droidracer.BaseActivity
}

func (a *settingsActivity) OnCreate(c *droidracer.Ctx) {
	c.Write("Settings.theme") // initialize the preference
	c.AddButton("save", true, func(c *droidracer.Ctx) {
		// Persist in the background; no synchronization with readers.
		c.Fork("disk-writer", func(b *droidracer.Ctx) {
			b.Write("Settings.theme")
		})
	})
	c.AddButton("apply", true, func(c *droidracer.Ctx) {
		c.Read("Settings.theme") // races with the disk writer
	})
}

func main() {
	// 1. Build the environment and register the application.
	env := droidracer.NewEnv(droidracer.DefaultEnvOptions())
	env.RegisterActivity("Settings", func() droidracer.Activity { return &settingsActivity{} })
	if err := env.Launch("Settings"); err != nil {
		log.Fatal(err)
	}

	// 2. Drive it: let the launch settle, then click save and apply.
	if err := env.Run(); err != nil {
		log.Fatal(err)
	}
	for _, ev := range []droidracer.UIEvent{
		{Kind: droidracer.EvClick, Widget: "save"},
		{Kind: droidracer.EvClick, Widget: "apply"},
	} {
		if err := env.Fire(ev); err != nil {
			log.Fatal(err)
		}
		if err := env.Run(); err != nil {
			log.Fatal(err)
		}
	}
	if err := env.Shutdown(); err != nil {
		log.Fatal(err)
	}

	// 3. Analyze the recorded trace.
	result, err := droidracer.Analyze(env.Trace(), droidracer.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d operations, %d fields, %d async tasks\n",
		result.Stats.Length, result.Stats.Fields, result.Stats.AsyncTasks)
	for _, r := range result.Races {
		fmt.Printf("%-13s race on %s: op %d (%v) vs op %d (%v)\n",
			r.Category, r.Loc,
			r.First, result.Trace.Op(r.First),
			r.Second, result.Trace.Op(r.Second))
	}
	if len(result.Races) == 0 {
		fmt.Println("no races detected")
	}
}
