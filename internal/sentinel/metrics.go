package sentinel

import "droidracer/internal/obs"

// Sentinel metrics. Estimate classes and isolation outcomes are
// pre-registered per label value so a scrape sees the complete series
// set (at zero) from process start.
var (
	memGauge = obs.Default().Gauge("droidracer_sentinel_mem_bytes",
		"Last heap-in-use sample taken by the resource sentinel.")
	brownoutGauge = obs.Default().Gauge("droidracer_sentinel_brownout",
		"1 while the daemon is above its memory watermark, 0 otherwise.")
	brownoutsTotal = obs.Default().Counter("droidracer_sentinel_brownouts_total",
		"Brownout crossings: samples that flipped the daemon above its watermark.")
	estimateCounters = map[string]*obs.Counter{}
	isolatedCounters = map[string]*obs.Counter{}
	isolatedPeak     = obs.Default().Gauge("droidracer_sentinel_isolated_peak_bytes",
		"Peak RSS reported by the most recent isolated worker.")
)

func init() {
	for _, class := range []string{ClassNormal, ClassHeavy, ClassRejected} {
		estimateCounters[class] = obs.Default().Counter("droidracer_sentinel_estimates_total",
			"Admission cost estimates, by ceiling class.", "class", class)
	}
	for _, outcome := range []string{
		"ok", ClassOOMKill, ClassMemLimit, ClassDeadline, ClassPanic, ClassCrash,
	} {
		isolatedCounters[outcome] = obs.Default().Counter("droidracer_sentinel_isolated_total",
			"Isolated worker executions, by outcome.", "outcome", outcome)
	}
}

// countIsolated bumps the per-outcome isolation counter, tolerating
// outcomes outside the pre-registered set.
func countIsolated(outcome string) {
	if c, ok := isolatedCounters[outcome]; ok {
		c.Inc()
	}
}
