package journal

import "droidracer/internal/obs"

// Write-ahead journal metrics. Fsync latency gets its own histogram
// because the durability barrier after each completed unit of work is
// the service's dominant I/O cost; torn-tail counters surface the data
// loss recovery would otherwise discard silently.
var (
	appendsTotal = obs.Default().Counter("droidracer_journal_appends_total",
		"Entries appended to the write-ahead journal.")
	fsyncsTotal = obs.Default().Counter("droidracer_journal_fsyncs_total",
		"Journal fsync barriers executed (explicit Sync and chunk-boundary).")
	fsyncDur = obs.Default().Histogram("droidracer_journal_fsync_duration_seconds",
		"Wall-clock time per journal fsync (flush + file sync).",
		obs.DurationBuckets())
	tornEntriesTotal = obs.Default().Counter("droidracer_journal_torn_entries_total",
		"Torn-tail lines discarded during journal recovery.")
	tornBytesTotal = obs.Default().Counter("droidracer_journal_torn_bytes_total",
		"Torn-tail bytes truncated during journal recovery.")
	corruptRecordsTotal = obs.Default().Counter("droidracer_journal_corrupt_records_total",
		"Corrupt (checksum-mismatched or out-of-sequence) records that stopped journal recovery.")
)
