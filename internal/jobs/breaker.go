package jobs

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"droidracer/internal/budget"
)

// RetryPolicy bounds re-execution of failed job attempts. Retries target
// transient failures — scheduling-dependent divergence, a deadline that
// barely tripped under load — while the circuit breaker (BreakerPolicy)
// catches inputs that fail deterministically.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per job (minimum and
	// default 1: no retry).
	MaxAttempts int
	// BaseBackoff is the pause before the second attempt; it doubles per
	// attempt with up to 50% deterministic jitter from Seed.
	BaseBackoff time.Duration
	// Seed seeds the backoff jitter (default 1).
	Seed int64
	// Retryable decides whether an error is worth another attempt. The
	// default retries everything except explicit cancellation.
	Retryable func(error) bool
	// Sleep replaces the interruptible pause in tests.
	Sleep func(time.Duration)
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts < 1 {
		r.MaxAttempts = 1
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Retryable == nil {
		r.Retryable = func(err error) bool {
			// Deterministic failures — a resource sandbox the input just
			// exhausted, say — die the same way on every attempt; burning
			// retries on them only multiplies dead subprocesses.
			var det interface{ Deterministic() bool }
			if errors.As(err, &det) && det.Deterministic() {
				return false
			}
			be, ok := budget.AsError(err)
			return !ok || !be.Canceled()
		}
	}
	return r
}

// pause sleeps the exponential backoff for the given 1-based attempt,
// interruptibly: a canceled pool context cuts the wait short so graceful
// shutdown is not held hostage by a backoff timer.
func (r RetryPolicy) pause(ctx context.Context, attempt int) error {
	if r.BaseBackoff <= 0 {
		return nil
	}
	d := r.BaseBackoff << (attempt - 1)
	rng := rand.New(rand.NewSource(r.Seed + int64(attempt)))
	d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	if r.Sleep != nil {
		r.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return &budget.Error{Stage: "jobs", Resource: budget.ResourceContext, Cause: ctx.Err()}
	case <-t.C:
		return nil
	}
}

// BreakerPolicy configures the per-input circuit breaker: after
// Threshold consecutive hard failures (panics or wall-clock/budget
// exhaustion) on the same job key, the breaker opens for that key and
// subsequent runs go straight to the job's degraded fallback. Softer
// failures (parse errors, divergence) do not count — they are either
// permanent (retries won't help, but neither would the fallback) or
// transient (retries handle them).
type BreakerPolicy struct {
	// Threshold is the consecutive hard-failure count that opens the
	// breaker (default 3; negative disables the breaker).
	Threshold int
}

// Breaker is a keyed consecutive-failure circuit breaker, the shared
// mechanism behind two deployments with different recovery stories:
//
//   - The pool's per-input breaker (keys are trace paths). It never
//     calls Reset: the same input deterministically re-fed to the code
//     that paniced will panic again, so an open key stays open for the
//     life of the pool and work degrades to the fallback.
//   - The gateway's per-backend breaker (keys are backend URLs).
//     Backends do recover — a crashed daemon restarts — so the health
//     prober acts as the half-open probe: a successful /readyz check
//     calls Reset and the backend takes traffic again.
//
// The zero value is usable; fields must not change after first use.
type Breaker struct {
	// Threshold is the consecutive counted-failure count that opens the
	// breaker for a key (default 3; negative disables the breaker).
	Threshold int
	// Counts classifies errors that count toward the threshold. Nil
	// counts every error.
	Counts func(error) bool
	// OnOpen, OnStreakReset, and OnReset observe state transitions (for
	// metrics); they are called outside the breaker lock.
	OnOpen        func(key string, err error)
	OnStreakReset func(key string)
	OnReset       func(key string)

	mu          sync.Mutex
	consecutive map[string]int
	open        map[string]error
}

// threshold resolves the effective threshold.
func (b *Breaker) threshold() int {
	if b.Threshold == 0 {
		return 3
	}
	return b.Threshold
}

// OpenFor reports whether the breaker is open for key, with the failure
// that opened it.
func (b *Breaker) OpenFor(key string) (error, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	err, ok := b.open[key]
	return err, ok
}

// OpenCount returns the number of keys the breaker is open for.
func (b *Breaker) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.open)
}

// Success resets the consecutive-failure count for key. It does not
// close an open breaker — that is Reset, and only a caller with
// out-of-band evidence of recovery (a health probe) may claim it.
func (b *Breaker) Success(key string) {
	b.mu.Lock()
	streak := b.consecutive[key] > 0
	delete(b.consecutive, key)
	b.mu.Unlock()
	if streak && b.OnStreakReset != nil {
		// A sub-threshold failure streak ended in success. The breaker
		// never opened for this key, so this is not a state transition —
		// just a streak reset, observed on its own hook.
		b.OnStreakReset(key)
	}
}

// Failure records a failed attempt; counted failures accumulate toward
// the threshold. It reports whether this failure opened the breaker.
func (b *Breaker) Failure(key string, err error) bool {
	if b.threshold() < 0 || (b.Counts != nil && !b.Counts(err)) {
		return false
	}
	b.mu.Lock()
	if _, already := b.open[key]; already {
		b.mu.Unlock()
		return false
	}
	if b.consecutive == nil {
		b.consecutive = make(map[string]int)
	}
	b.consecutive[key]++
	opened := b.consecutive[key] >= b.threshold()
	if opened {
		if b.open == nil {
			b.open = make(map[string]error)
		}
		b.open[key] = err
	}
	b.mu.Unlock()
	if opened && b.OnOpen != nil {
		b.OnOpen(key, err)
	}
	return opened
}

// Reset closes an open breaker for key and clears its failure streak.
// It is the half-open-probe success path: callers invoke it only after
// independently verifying the key recovered (the gateway's health
// prober saw /readyz answer 200). It reports whether the breaker was
// open.
func (b *Breaker) Reset(key string) bool {
	b.mu.Lock()
	_, wasOpen := b.open[key]
	delete(b.open, key)
	delete(b.consecutive, key)
	b.mu.Unlock()
	if wasOpen && b.OnReset != nil {
		b.OnReset(key)
	}
	return wasOpen
}

// newBreaker builds the pool's per-input breaker: hard failures only
// (panics, exhausted budgets), jobs-namespaced transition metrics, and
// no reset path.
func newBreaker(p BreakerPolicy) *Breaker {
	b := &Breaker{
		Threshold: p.Threshold,
		Counts:    hardFailure,
		OnStreakReset: func(string) {
			breakerStreakResets.Inc()
		},
	}
	b.OnOpen = func(string, error) {
		breakerTransitions["open"].Inc()
		breakersOpen.Set(int64(b.OpenCount()))
	}
	return b
}

// hardFailure reports whether err is the kind of failure the pool's
// breaker counts: a recovered panic or exhausted budget (wall clock,
// graph nodes, closure edges, sequences) — not cancellation, not plain
// errors.
func hardFailure(err error) bool {
	var pe *budget.PanicError
	if errors.As(err, &pe) {
		return true
	}
	if be, ok := budget.AsError(err); ok {
		return !be.Canceled()
	}
	return false
}
