// TestParallelEquivalence is the determinism gate for the parallel
// analysis engine: on every Table 2 application trace, the parallel
// happens-before closure and the sharded race scan must reproduce the
// serial engines' output exactly — the same rule attribution, the same
// pair count, the same races in the same order. CI runs it under -race
// at GOMAXPROCS 1, 2, and 8.
package droidracer_test

import (
	"reflect"
	"testing"

	"droidracer/internal/apps"
	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

func TestParallelEquivalence(t *testing.T) {
	for _, app := range apps.All() {
		name := app.Name()
		t.Run(name, func(t *testing.T) {
			tr := representative(t, name).Trace
			info, err := trace.Analyze(tr)
			if err != nil {
				t.Fatal(err)
			}
			serialG := hb.Build(info, hb.DefaultConfig())
			serialRaces := race.NewDetector(serialG).Detect()

			for _, workers := range []int{2, 8} {
				cfg := hb.DefaultConfig()
				cfg.Parallelism = workers
				g := hb.Build(info, cfg)
				if got, want := g.EdgeCount(), serialG.EdgeCount(); got != want {
					t.Errorf("workers=%d: EdgeCount %d, serial %d", workers, got, want)
				}
				if got, want := g.RuleEdges(), serialG.RuleEdges(); !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: RuleEdges diverge\n got %v\nwant %v", workers, got, want)
				}
				if got, want := g.Skipped(), serialG.Skipped(); got != want {
					t.Errorf("workers=%d: Skipped %d, serial %d", workers, got, want)
				}
				d := race.NewDetector(g)
				d.Parallelism = workers
				races := d.Detect()
				if !reflect.DeepEqual(races, serialRaces) {
					t.Errorf("workers=%d: race set diverges: %d races, serial %d",
						workers, len(races), len(serialRaces))
				}
			}
		})
	}
}
