// Command tracegen is the Trace Generator component of DroidRacer (§5)
// for the bundled application models: it runs an application under the
// simulated Android runtime, optionally firing an event sequence, and
// writes the execution trace in the textual core-language format.
//
// Usage:
//
//	tracegen -app "Music Player" [-events "click(x);BACK"] [-seed 7] [-o trace.txt]
//	tracegen -list
//
// Events are given as a semicolon-separated sequence of
// click(widget), longclick(widget), text(widget=value), BACK, HOME,
// return, rotate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"droidracer"
	"droidracer/internal/apps"
	"droidracer/internal/budget"
)

func main() {
	appName := flag.String("app", "", "application model to run (see -list)")
	events := flag.String("events", "", "semicolon-separated event sequence, e.g. \"click(play);BACK\"")
	seed := flag.Int64("seed", 0, "scheduling seed (0 = deterministic round-robin)")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available application models")
	flag.Parse()

	if *list {
		for _, name := range apps.Names() {
			fmt.Println(name)
		}
		return
	}
	if *appName == "" {
		fatal(fmt.Errorf("missing -app (use -list to see models)"))
	}
	app, err := apps.New(*appName)
	if err != nil {
		fatal(err)
	}
	seq, err := parseEvents(*events)
	if err != nil {
		fatal(err)
	}
	// The replay runs the app model's own callbacks; isolate so a broken
	// model yields an error message, not a crashed process.
	var tr *droidracer.Trace
	if err := budget.Isolate("tracegen", func() error {
		var err error
		tr, err = droidracer.Replay(apps.Factory(app), *seed, seq)
		return err
	}); err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := droidracer.FormatTrace(w, tr); err != nil {
		fatal(err)
	}
}

// parseEvents parses the -events syntax.
func parseEvents(s string) ([]droidracer.UIEvent, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []droidracer.UIEvent
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		switch {
		case part == "BACK":
			out = append(out, droidracer.UIEvent{Kind: droidracer.EvBack})
		case part == "HOME":
			out = append(out, droidracer.UIEvent{Kind: droidracer.EvHome})
		case part == "return":
			out = append(out, droidracer.UIEvent{Kind: droidracer.EvReturn})
		case part == "rotate":
			out = append(out, droidracer.UIEvent{Kind: droidracer.EvRotate})
		case strings.HasPrefix(part, "click(") && strings.HasSuffix(part, ")"):
			out = append(out, droidracer.UIEvent{Kind: droidracer.EvClick, Widget: part[6 : len(part)-1]})
		case strings.HasPrefix(part, "longclick(") && strings.HasSuffix(part, ")"):
			out = append(out, droidracer.UIEvent{Kind: droidracer.EvLongClick, Widget: part[10 : len(part)-1]})
		case strings.HasPrefix(part, "text(") && strings.HasSuffix(part, ")"):
			body := part[5 : len(part)-1]
			eq := strings.IndexByte(body, '=')
			if eq < 0 {
				return nil, fmt.Errorf("bad text event %q (want text(widget=value))", part)
			}
			out = append(out, droidracer.UIEvent{
				Kind:   droidracer.EvText,
				Widget: body[:eq],
				Text:   body[eq+1:],
			})
		default:
			return nil, fmt.Errorf("bad event %q", part)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
