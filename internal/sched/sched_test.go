package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// looperProgram attaches a queue and loops.
func looperProgram(t *Thread) {
	t.AttachQueue()
	t.Loop()
}

// runToQuiescence drives the sim and fails the test on scheduler errors.
func runToQuiescence(t *testing.T, s *Sim) Status {
	t.Helper()
	st, err := s.RunUntilQuiescent()
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	return st
}

// validate checks the recorded trace against the Figure 5 semantics.
func validate(t *testing.T, s *Sim) {
	t.Helper()
	if i, err := semantics.ValidateInferred(s.Trace()); err != nil {
		t.Fatalf("trace invalid at op %d: %v\ntrace:\n%s", i, err, dump(s.Trace()))
	}
}

func dump(tr *trace.Trace) string {
	var sb strings.Builder
	for i, op := range tr.Ops() {
		sb.WriteString(op.String())
		if i < tr.Len()-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func TestBasicLooperPost(t *testing.T) {
	s := New(DefaultOptions())
	main := s.Spawn("main", looperProgram)
	s.Spawn("worker", func(w *Thread) {
		w.Write("x")
		w.Post(main, "show", func(m *Thread) {
			m.Read("x")
		})
	})
	if st := runToQuiescence(t, s); st != Quiescent {
		t.Fatalf("status = %v, want quiescent (looper still waiting)", st)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	validate(t, s)
	tr := s.Trace()
	var kinds []trace.Kind
	for _, op := range tr.Ops() {
		kinds = append(kinds, op.Kind)
	}
	// Expect post before begin before end, and both accesses present.
	post, begin, end, reads, writes := -1, -1, -1, 0, 0
	for i, op := range tr.Ops() {
		switch op.Kind {
		case trace.OpPost:
			post = i
		case trace.OpBegin:
			begin = i
		case trace.OpEnd:
			end = i
		case trace.OpRead:
			reads++
		case trace.OpWrite:
			writes++
		}
	}
	if post < 0 || begin < 0 || end < 0 || !(post < begin && begin < end) {
		t.Fatalf("post/begin/end malformed: %v\n%s", kinds, dump(tr))
	}
	if reads != 1 || writes != 1 {
		t.Fatalf("accesses: %d reads, %d writes", reads, writes)
	}
}

func TestFIFODispatchOrder(t *testing.T) {
	s := New(DefaultOptions())
	main := s.Spawn("main", looperProgram)
	var order []string
	s.Spawn("worker", func(w *Thread) {
		for _, name := range []string{"a", "b", "c"} {
			name := name
			w.Post(main, name, func(*Thread) { order = append(order, name) })
		}
	})
	runToQuiescence(t, s)
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("dispatch order = %q, want abc", got)
	}
	validate(t, s)
}

func TestFrontPostOvertakes(t *testing.T) {
	s := New(DefaultOptions())
	main := s.Spawn("main", looperProgram)
	var order []string
	// Post from within a task so the queue holds both before dispatch.
	s.Spawn("worker", func(w *Thread) {
		w.Post(main, "setup", func(m *Thread) {
			m.Post(main, "back", func(*Thread) { order = append(order, "back") })
			m.PostFront(main, "front", func(*Thread) { order = append(order, "front") })
		})
	})
	runToQuiescence(t, s)
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "front,back" {
		t.Fatalf("order = %q, want front,back", got)
	}
	validate(t, s)
}

func TestDelayedPostsFireInTimeoutOrder(t *testing.T) {
	s := New(DefaultOptions())
	main := s.Spawn("main", looperProgram)
	var order []string
	s.Spawn("worker", func(w *Thread) {
		w.PostDelayed(main, "late", func(*Thread) { order = append(order, "late") }, 500)
		w.PostDelayed(main, "early", func(*Thread) { order = append(order, "early") }, 100)
		w.Post(main, "now", func(*Thread) { order = append(order, "now") })
	})
	runToQuiescence(t, s)
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "now,early,late" {
		t.Fatalf("order = %q, want now,early,late", got)
	}
	// The clock reached at least the longest timeout (plus one tick per
	// operation performed after the jump).
	if s.Now() < 500 {
		t.Fatalf("virtual clock = %d, want ≥ 500", s.Now())
	}
	validate(t, s)
}

func TestDelayedTieBreaksByPostOrder(t *testing.T) {
	s := New(DefaultOptions())
	main := s.Spawn("main", looperProgram)
	var order []string
	s.Spawn("worker", func(w *Thread) {
		w.PostDelayed(main, "first", func(*Thread) { order = append(order, "first") }, 100)
		w.PostDelayed(main, "second", func(*Thread) { order = append(order, "second") }, 100)
	})
	runToQuiescence(t, s)
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "first,second" {
		t.Fatalf("order = %q", got)
	}
}

func TestCancelPendingTask(t *testing.T) {
	s := New(DefaultOptions())
	main := s.Spawn("main", looperProgram)
	ran := false
	s.Spawn("worker", func(w *Thread) {
		w.Post(main, "blocker", func(m *Thread) {
			// While this task runs, cancel the queued victim.
			id := m.Post(m.sim.threadByName("main"), "victim", func(*Thread) { ran = true })
			m.Cancel(m.sim.threadByName("main"), id)
		})
	})
	runToQuiescence(t, s)
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled task ran")
	}
	validate(t, s)
}

// threadByName is a test helper.
func (s *Sim) threadByName(name string) *Thread {
	for _, t := range s.threads {
		if t.name == name {
			return t
		}
	}
	return nil
}

func TestCancelDelayedTask(t *testing.T) {
	s := New(DefaultOptions())
	main := s.Spawn("main", looperProgram)
	ran := false
	s.Spawn("worker", func(w *Thread) {
		id := w.PostDelayed(main, "victim", func(*Thread) { ran = true }, 100)
		w.Cancel(main, id)
	})
	runToQuiescence(t, s)
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled delayed task ran")
	}
}

func TestLockMutualExclusionAndBlocking(t *testing.T) {
	s := New(DefaultOptions())
	depth := 0
	maxDepth := 0
	body := func(w *Thread) {
		w.Acquire("l")
		depth++
		if depth > maxDepth {
			maxDepth = depth
		}
		w.Write("x")
		w.Write("x")
		depth--
		w.Release("l")
	}
	s.Spawn("a", body)
	s.Spawn("b", body)
	if st := runToQuiescence(t, s); st != Done {
		t.Fatalf("status = %v, want done", st)
	}
	if maxDepth != 1 {
		t.Fatalf("critical sections overlapped (depth %d)", maxDepth)
	}
	validate(t, s)
}

func TestReentrantLock(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("a", func(w *Thread) {
		w.Acquire("l")
		w.Acquire("l")
		w.Release("l")
		w.Release("l")
	})
	if st := runToQuiescence(t, s); st != Done {
		t.Fatalf("status = %v", st)
	}
	validate(t, s)
}

func TestForkJoin(t *testing.T) {
	s := New(DefaultOptions())
	var childDone bool
	s.Spawn("parent", func(p *Thread) {
		c := p.Fork("child", func(c *Thread) {
			c.Write("x")
			childDone = true
		})
		p.Join(c)
		if !childDone {
			t.Error("join returned before child finished")
		}
		p.Read("x")
	})
	if st := runToQuiescence(t, s); st != Done {
		t.Fatalf("status = %v, want done", st)
	}
	validate(t, s)
}

func TestDeadlockDetected(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("a", func(w *Thread) {
		w.Acquire("l1")
		w.Acquire("l2")
		w.Release("l2")
		w.Release("l1")
	})
	s.Spawn("b", func(w *Thread) {
		w.Acquire("l2")
		w.Acquire("l1")
		w.Release("l1")
		w.Release("l2")
	})
	_, err := s.RunUntilQuiescent()
	s.Close()
	// Round-robin interleaving acquires l1@a, l2@b, then both block.
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestInjectUIEvent(t *testing.T) {
	s := New(DefaultOptions())
	main := s.Spawn("main", looperProgram)
	clicked := false
	runToQuiescence(t, s)
	s.Inject(main, s.FreshTask("onClick"), func(*Thread) { clicked = true })
	runToQuiescence(t, s)
	if !clicked {
		t.Fatal("injected event did not run")
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	validate(t, s)
	// The handler post is emitted by the looper thread itself.
	var post trace.Op
	for _, op := range s.Trace().Ops() {
		if op.Kind == trace.OpPost {
			post = op
		}
	}
	if post.Thread != main.ID() || post.Other != main.ID() {
		t.Fatalf("input post = %v, want self-post on main", post)
	}
}

func TestExecCommandThread(t *testing.T) {
	s := New(DefaultOptions())
	binder := s.Spawn("binder", func(b *Thread) { b.CommandLoop() })
	main := s.Spawn("main", looperProgram)
	runToQuiescence(t, s)
	s.Exec(binder, func(b *Thread) {
		b.Post(main, "LAUNCH_ACTIVITY", func(m *Thread) { m.Write("act") })
	})
	runToQuiescence(t, s)
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	validate(t, s)
	found := false
	for _, op := range s.Trace().Ops() {
		if op.Kind == trace.OpPost && op.Thread == binder.ID() && op.Other == main.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("binder post missing from trace")
	}
}

func TestPostWithoutQueueFails(t *testing.T) {
	s := New(DefaultOptions())
	plain := s.Spawn("plain", func(w *Thread) {
		w.CommandLoop()
	})
	s.Spawn("worker", func(w *Thread) {
		w.Post(plain, "task", func(*Thread) {})
	})
	_, err := s.RunUntilQuiescent()
	s.Close()
	if err == nil || !strings.Contains(err.Error(), "without a queue") {
		t.Fatalf("err = %v, want queue error", err)
	}
}

func TestExitHoldingLockFails(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("a", func(w *Thread) { w.Acquire("l") })
	_, err := s.RunUntilQuiescent()
	s.Close()
	if err == nil || !strings.Contains(err.Error(), "holding locks") {
		t.Fatalf("err = %v, want lock leak error", err)
	}
}

func TestPanicInProgramSurfaces(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("a", func(w *Thread) {
		w.Write("x")
		panic("boom")
	})
	_, err := s.RunUntilQuiescent()
	s.Close()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic message", err)
	}
}

func TestRecordOff(t *testing.T) {
	s := New(Options{Policy: RoundRobin{}, Record: false})
	s.Spawn("a", func(w *Thread) { w.Write("x") })
	runToQuiescence(t, s)
	if s.Trace().Len() != 0 {
		t.Fatalf("trace recorded %d ops with Record off", s.Trace().Len())
	}
}

func TestFreshTaskUnique(t *testing.T) {
	s := New(DefaultOptions())
	a := s.FreshTask("onClick")
	b := s.FreshTask("onClick")
	c := s.FreshTask("other")
	if a == b || a == c || b == c {
		t.Fatalf("task names collide: %s %s %s", a, b, c)
	}
	if a != "onClick" {
		t.Fatalf("first occurrence renamed: %s", a)
	}
}

// program used for determinism and validation property tests: a small app
// with a looper, a binder-ish worker, locks, delayed posts, and forks.
func richProgram(s *Sim) {
	main := s.Spawn("main", looperProgram)
	s.Spawn("worker", func(w *Thread) {
		w.WaitQueue(main)
		w.Write("g")
		w.Acquire("l")
		w.Write("shared")
		w.Release("l")
		w.Post(main, "t1", func(m *Thread) {
			m.Read("g")
			m.Acquire("l")
			m.Write("shared")
			m.Release("l")
			bg := m.Fork("bg", func(b *Thread) {
				b.Write("bgdata")
			})
			m.Join(bg)
		})
		w.PostDelayed(main, "t2", func(m *Thread) {
			m.Read("bgdata")
		}, 50)
		w.PostFront(main, "t3", func(m *Thread) {
			m.Read("g")
		})
	})
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) *trace.Trace {
		s := New(Options{Policy: NewRandomPolicy(seed), Record: true})
		richProgram(s)
		if _, err := s.RunUntilQuiescent(); err != nil {
			s.Close()
			t.Fatal(err)
		}
		if err := s.Shutdown(); err != nil {
			t.Fatal(err)
		}
		return s.Trace()
	}
	a, b := run(42), run(42)
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different lengths: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Ops() {
		if a.Op(i) != b.Op(i) {
			t.Fatalf("same seed diverges at op %d: %v vs %v", i, a.Op(i), b.Op(i))
		}
	}
}

// TestQuickTracesValidUnderAnySeed checks the central simulator/semantics
// agreement: every interleaving the scheduler produces is a valid
// execution under Figure 5.
func TestQuickTracesValidUnderAnySeed(t *testing.T) {
	f := func(seed int64) bool {
		s := New(Options{Policy: NewRandomPolicy(seed), Record: true})
		richProgram(s)
		if _, err := s.RunUntilQuiescent(); err != nil {
			s.Close()
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := s.Shutdown(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if i, err := semantics.ValidateInferred(s.Trace()); err != nil {
			t.Logf("seed %d: op %d: %v", seed, i, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicies(t *testing.T) {
	a := &Thread{id: 1}
	b := &Thread{id: 2}
	if (RoundRobin{}).Pick([]*Thread{a, b}) != 0 {
		t.Fatal("round robin must pick the head")
	}
	p := &PreferPolicy{Prefer: 2, Fallback: RoundRobin{}}
	if p.Pick([]*Thread{a, b}) != 1 {
		t.Fatal("prefer policy ignored preferred thread")
	}
	if p.Pick([]*Thread{a}) != 0 {
		t.Fatal("prefer policy fallback broken")
	}
	r := NewRandomPolicy(1)
	for i := 0; i < 10; i++ {
		if k := r.Pick([]*Thread{a, b}); k != 0 && k != 1 {
			t.Fatal("random policy out of range")
		}
	}
}

func TestAdHocFlags(t *testing.T) {
	s := New(DefaultOptions())
	var order []string
	s.Spawn("producer", func(w *Thread) {
		w.Write("data")
		order = append(order, "write")
		w.SetFlag("ready")
	})
	s.Spawn("consumer", func(w *Thread) {
		w.WaitFlag("ready")
		order = append(order, "read")
		w.Read("data")
	})
	if st := runToQuiescence(t, s); st != Done {
		t.Fatalf("status = %v", st)
	}
	if strings.Join(order, ",") != "write,read" {
		t.Fatalf("order = %v: ad-hoc flag did not enforce ordering", order)
	}
	// The flag leaves no trace operations behind.
	for _, op := range s.Trace().Ops() {
		if op.Kind != trace.OpThreadInit && op.Kind != trace.OpThreadExit && !op.Kind.IsAccess() {
			t.Fatalf("unexpected op %v in trace", op)
		}
	}
}

func TestFlagNeverSetIsDeadlock(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("waiter", func(w *Thread) { w.WaitFlag("never") })
	_, err := s.RunUntilQuiescent()
	s.Close()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}
