package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed tracing, zero-dependency. A submission mints (or inherits
// via the W3C traceparent header) a 16-byte trace ID; every process it
// crosses buffers spans into a per-request TraceRec and decides at the
// end whether the trace is worth keeping (tail capture): client-sampled
// traces always commit, unsampled ones commit only when the request was
// slow, failed, or quarantined. Committed traces land in a bounded ring
// (SpanStore) served by /debug/traces on the DebugMux; `racedet -trace`
// stitches the per-process fragments into one waterfall.

// TraceparentHeader is the W3C propagation header name.
const TraceparentHeader = "traceparent"

// SpanContext identifies a position in a trace: the trace and the span
// under which remote work should hang. IDs are lowercase hex (32 and 16
// digits), exactly as they appear on the wire.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Traceparent renders the context in W3C form:
// "00-<trace-id>-<parent-id>-01" (version 00, sampled flag set —
// a caller that sends the header wants the trace kept).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version byte (per spec, unknown versions are parsed as 00) and
// rejects all-zero IDs, which the spec defines as invalid.
func ParseTraceparent(h string) (SpanContext, bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	tid, sid := h[3:35], h[36:52]
	if !validHex(tid) || !validHex(sid) || allZero(tid) || allZero(sid) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: tid, SpanID: sid}, true
}

func validHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// spanSeq feeds span-ID generation: a random per-process base (so IDs
// from different fleet processes merge without collision) advanced by
// an atomic counter (so minting a span never takes a lock or a read
// from the kernel's entropy pool).
var spanSeq atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		spanSeq.Store(binary.BigEndian.Uint64(b[:]))
	} else {
		spanSeq.Store(uint64(time.Now().UnixNano()))
	}
}

// NewTraceID mints a random 32-hex-digit trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:8], spanSeq.Add(1))
		binary.BigEndian.PutUint64(b[8:], uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID mints a 16-hex-digit span ID unique across the fleet.
func NewSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], spanSeq.Add(1))
	return hex.EncodeToString(b[:])
}

// TraceSpan is one finished span as stored and served by /debug/traces.
type TraceSpan struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	Parent   string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Service  string            `json:"service,omitempty"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Err      string            `json:"err,omitempty"`
}

// serviceName labels every span this process emits ("racedetd",
// "racedetgw", "racedet"); the stitched waterfall's first column.
var serviceName atomic.Value // string

// SetServiceName records the process's service label for spans.
func SetServiceName(name string) { serviceName.Store(name) }

// ServiceName returns the configured service label, or "".
func ServiceName() string {
	if v := serviceName.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Trace metrics, pre-registered so scrapes see the family from start.
var (
	traceSpansTotal = Default().Counter("droidracer_trace_spans_total",
		"Spans recorded into trace buffers (committed or not).")
	traceCommitsTotal = Default().Counter("droidracer_trace_commits_total",
		"Traces committed to the in-process span store (tail capture hits).")
	traceDiscardsTotal = Default().Counter("droidracer_trace_discards_total",
		"Unsampled traces discarded at commit time (fast, healthy requests).")
	traceEvictionsTotal = Default().Counter("droidracer_trace_store_evictions_total",
		"Committed traces evicted from the bounded span store ring.")
	traceStored = Default().Gauge("droidracer_trace_store_traces",
		"Committed traces currently held in the span store ring.")
)

// maxSpansPerTrace bounds one trace's buffer: a pathological retry loop
// must not turn a recorder into an unbounded allocation.
const maxSpansPerTrace = 256

// storedTrace is one committed trace in the ring.
type storedTrace struct {
	id    string
	spans []TraceSpan
}

// SpanStore is a bounded ring of committed traces. Commits past the
// capacity evict the oldest trace; lookups and listings copy out under
// the lock so scrapes never observe a trace mid-eviction.
type SpanStore struct {
	mu   sync.Mutex
	cap  int
	ring []storedTrace
	next int            // ring index the next commit overwrites
	byID map[string]int // trace id -> ring index
}

// DefaultSpanStoreCapacity is the per-process trace retention when the
// daemon does not override it: enough history to chase a p99 exemplar
// minutes later without holding more than a few MB of spans.
const DefaultSpanStoreCapacity = 512

// NewSpanStore returns a ring holding up to capacity committed traces.
func NewSpanStore(capacity int) *SpanStore {
	if capacity < 1 {
		capacity = DefaultSpanStoreCapacity
	}
	return &SpanStore{cap: capacity, ring: make([]storedTrace, capacity), byID: make(map[string]int)}
}

var defaultSpanStore = NewSpanStore(DefaultSpanStoreCapacity)

// Traces returns the process-wide span store that daemons commit into
// and /debug/traces serves.
func Traces() *SpanStore { return defaultSpanStore }

// put commits one trace's spans, evicting the oldest if full. A second
// commit for the same trace ID (e.g. a duplicate submission coalescing
// against a pending job) appends to the existing entry rather than
// splitting the trace across ring slots.
func (st *SpanStore) put(id string, spans []TraceSpan) {
	if st == nil || len(spans) == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if i, ok := st.byID[id]; ok {
		if len(st.ring[i].spans)+len(spans) <= maxSpansPerTrace {
			st.ring[i].spans = append(st.ring[i].spans, spans...)
		}
		return
	}
	if evicted := st.ring[st.next]; evicted.id != "" {
		delete(st.byID, evicted.id)
		traceEvictionsTotal.Inc()
	}
	st.ring[st.next] = storedTrace{id: id, spans: spans}
	st.byID[id] = st.next
	st.next = (st.next + 1) % st.cap
	traceStored.Set(int64(len(st.byID)))
}

// Trace returns the committed spans of one trace ID, or nil.
func (st *SpanStore) Trace(id string) []TraceSpan {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	i, ok := st.byID[id]
	if !ok {
		return nil
	}
	return append([]TraceSpan(nil), st.ring[i].spans...)
}

// TraceSummary is one row of the /debug/traces listing.
type TraceSummary struct {
	TraceID  string        `json:"trace_id"`
	Root     string        `json:"root"`
	Service  string        `json:"service,omitempty"`
	Spans    int           `json:"spans"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// Summaries lists the stored traces, most recently committed first.
// The root span is the first span without a locally known parent; its
// name, start, and duration summarize the trace.
func (st *SpanStore) Summaries() []TraceSummary {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]TraceSummary, 0, len(st.byID))
	// Walk the ring newest-first: next-1 backwards.
	for k := 0; k < st.cap; k++ {
		i := (st.next - 1 - k + 2*st.cap) % st.cap
		tr := st.ring[i]
		if tr.id == "" {
			continue
		}
		out = append(out, summarize(tr))
		if len(out) == len(st.byID) {
			break
		}
	}
	return out
}

func summarize(tr storedTrace) TraceSummary {
	s := TraceSummary{TraceID: tr.id, Spans: len(tr.spans)}
	local := make(map[string]bool, len(tr.spans))
	for _, sp := range tr.spans {
		local[sp.SpanID] = true
	}
	for _, sp := range tr.spans {
		if sp.Parent == "" || !local[sp.Parent] {
			s.Root, s.Service = sp.Name, sp.Service
			s.Start, s.Duration = sp.Start, sp.Duration
			break
		}
	}
	for _, sp := range tr.spans {
		if sp.Err != "" {
			s.Err = sp.Err
			break
		}
	}
	return s
}

// TraceRec buffers one request's spans until the commit decision. A nil
// *TraceRec is a valid no-op recorder: every method checks, so
// instrumented code never branches on whether tracing is on.
type TraceRec struct {
	store   *SpanStore
	traceID string
	sampled bool

	mu        sync.Mutex
	spans     []TraceSpan
	committed bool
}

// Begin starts recording a trace into the store. sampled marks traces
// the client asked to keep (it sent a traceparent); unsampled traces
// only survive a forced commit (slow / failed / quarantined).
func (st *SpanStore) Begin(traceID string, sampled bool) *TraceRec {
	if st == nil || traceID == "" {
		return nil
	}
	return &TraceRec{store: st, traceID: traceID, sampled: sampled}
}

// TraceID returns the trace being recorded, or "" on a nil recorder.
func (r *TraceRec) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID
}

// Sampled reports whether the client asked for this trace to be kept.
func (r *TraceRec) Sampled() bool { return r != nil && r.sampled }

// AddSpan records an already-measured span (e.g. a phase timing whose
// clock ran before the recorder was consulted).
func (r *TraceRec) AddSpan(name, parent string, start time.Time, d time.Duration) {
	if r == nil {
		return
	}
	r.append(TraceSpan{
		TraceID: r.traceID, SpanID: NewSpanID(), Parent: parent,
		Name: name, Service: ServiceName(), Start: start, Duration: d,
	})
}

func (r *TraceRec) append(sp TraceSpan) {
	r.mu.Lock()
	if len(r.spans) < maxSpansPerTrace {
		r.spans = append(r.spans, sp)
	}
	r.mu.Unlock()
	traceSpansTotal.Inc()
}

// TSpan is one in-flight trace span; End records it on the recorder.
type TSpan struct {
	rec   *TraceRec
	span  TraceSpan
	ended atomic.Bool
}

// StartSpan opens a span under parent (a span ID, or "" for a root).
// Safe on a nil recorder — returns a no-op span whose ID is "".
func (r *TraceRec) StartSpan(name, parent string) *TSpan {
	if r == nil {
		return nil
	}
	return &TSpan{rec: r, span: TraceSpan{
		TraceID: r.traceID, SpanID: NewSpanID(), Parent: parent,
		Name: name, Service: ServiceName(), Start: time.Now(),
	}}
}

// ID returns the span's ID ("" on a no-op span), for parenting
// children or rendering a traceparent to send downstream.
func (s *TSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.span.SpanID
}

// Context returns the SpanContext addressing this span.
func (s *TSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.span.TraceID, SpanID: s.span.SpanID}
}

// SetAttr attaches a key=value attribute. Not safe for concurrent use
// with End on the same span (spans are single-owner by design).
func (s *TSpan) SetAttr(k, v string) {
	if s == nil || s.ended.Load() {
		return
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[k] = v
}

// SetErr marks the span failed.
func (s *TSpan) SetErr(err error) {
	if s == nil || err == nil || s.ended.Load() {
		return
	}
	s.span.Err = err.Error()
}

// End stops the clock and records the span; a second End is a no-op.
func (s *TSpan) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.span.Duration = time.Since(s.span.Start)
	s.rec.append(s.span)
}

// Commit decides the trace's fate: keep when the client sampled it or
// the process observed something worth keeping (force: slow, failed,
// quarantined), discard otherwise. Idempotent; spans recorded by a
// later commit of the same ID append to the stored trace.
func (r *TraceRec) Commit(force bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.committed {
		r.mu.Unlock()
		return
	}
	r.committed = true
	spans := r.spans
	r.spans = nil
	r.mu.Unlock()
	if !r.sampled && !force {
		traceDiscardsTotal.Inc()
		return
	}
	if len(spans) == 0 {
		return
	}
	traceCommitsTotal.Inc()
	r.store.put(r.traceID, spans)
}

// traceCtxKey carries a traceCtx through context.Context.
type traceCtxKey struct{}

type traceCtx struct {
	rec    *TraceRec
	parent string
}

// ContextWithTrace returns ctx carrying the recorder and the span ID
// new child spans should hang under.
func ContextWithTrace(ctx context.Context, rec *TraceRec, parent string) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, traceCtx{rec: rec, parent: parent})
}

// TraceFromContext extracts the recorder and parent span ID, or
// (nil, "") when the request is untraced.
func TraceFromContext(ctx context.Context) (*TraceRec, string) {
	if ctx == nil {
		return nil, ""
	}
	if tc, ok := ctx.Value(traceCtxKey{}).(traceCtx); ok {
		return tc.rec, tc.parent
	}
	return nil, ""
}

// String implements fmt.Stringer for debugging.
func (sc SpanContext) String() string { return fmt.Sprintf("%s/%s", sc.TraceID, sc.SpanID) }
