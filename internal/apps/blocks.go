package apps

import (
	"fmt"

	"droidracer/internal/android"
	"droidracer/internal/trace"
)

// The blocks in this file are the shared concurrency idioms the app models
// are assembled from. Each seed block plants races of a known category on
// distinct memory locations; locations listed in trueSet are genuinely
// reorderable, while the others are ordered by ad-hoc synchronization
// (sched flags) invisible to the instrumentation — DroidRacer still
// reports them, and the ground truth labels them false positives,
// reproducing the §6 discussion of false-positive sources.
//
// Races come from few threads posting many tasks, as in the real
// applications: Table 2's Music Player has 17 cross-posted races but only
// 3 threads without queues.

// raceLocs derives the n racy location names for a seed block.
func raceLocs(app, block string, n int) []trace.Loc {
	locs := make([]trace.Loc, n)
	for i := range locs {
		locs[i] = trace.Loc(fmt.Sprintf("%s.%s%d", app, block, i))
	}
	return locs
}

// fieldSweep touches n distinct fields under the given prefix from the
// current context, padding the trace and the Table 2 "Fields" column the
// way real applications touch many object fields per callback.
func fieldSweep(c *android.Ctx, prefix string, n int) {
	for i := 0; i < n; i++ {
		loc := trace.Loc(fmt.Sprintf("%s.f%d", prefix, i))
		c.Write(loc)
		c.Read(loc)
	}
}

// readSweep re-reads n fields previously written by fieldSweep from the
// same thread-local region.
func readSweep(c *android.Ctx, prefix string, n int) {
	for i := 0; i < n; i++ {
		c.Read(trace.Loc(fmt.Sprintf("%s.f%d", prefix, i)))
	}
}

// seedMTBatch races one background thread against the current thread on
// nTrue+nFalse locations: the thread reads while the caller writes. The
// false portion is flag-ordered (write first, invisibly). Adds one thread
// without a queue.
func seedMTBatch(c *android.Ctx, app string, nTrue, nFalse int) {
	locsT := raceLocs(app, "mt", nTrue)
	locsF := raceLocs(app, "mtfp", nFalse)
	flag := app + ".mt.ready"
	c.Fork(app+"-mt-reader", func(b *android.Ctx) {
		for _, l := range locsT {
			b.Read(l)
		}
		if len(locsF) > 0 {
			b.WaitFlag(flag)
			for _, l := range locsF {
				b.Read(l)
			}
		}
	})
	for _, l := range locsT {
		c.Write(l)
	}
	for _, l := range locsF {
		c.Write(l)
	}
	if len(locsF) > 0 {
		c.SetFlag(flag)
	}
}

// bundles splits locs into groups of at most per (per<1 means 1).
func bundles(locs []trace.Loc, per int) [][]trace.Loc {
	if per < 1 {
		per = 1
	}
	var out [][]trace.Loc
	for len(locs) > 0 {
		n := per
		if n > len(locs) {
			n = len(locs)
		}
		out = append(out, locs[:n])
		locs = locs[n:]
	}
	return out
}

// seedCrossBatch plants cross-posted races: two poster threads send tasks
// to the main thread that access the same locations without ordering
// between the posts. Each task pair covers up to perTask locations (one
// racy update task touches several fields, as in real applications).
// False entries are flag-ordered: the reader's post waits (invisibly)
// until the writer task ran. Adds two threads without queues.
func seedCrossBatch(c *android.Ctx, app string, nTrue, nFalse, perTask int) {
	bundlesT := bundles(raceLocs(app, "cross", nTrue), perTask)
	bundlesF := bundles(raceLocs(app, "crossfp", nFalse), perTask)
	h := c.Env.MainHandler()
	c.Fork(app+"-poster1", func(b *android.Ctx) {
		for i, group := range bundlesT {
			group := group
			h.Post(b, fmt.Sprintf("%s.update%d", app, i), func(m *android.Ctx) {
				for _, l := range group {
					m.Write(l)
				}
			})
		}
		for i, group := range bundlesF {
			group := group
			flag := fmt.Sprintf("%s.cross.done%d", app, i)
			h.Post(b, fmt.Sprintf("%s.updatefp%d", app, i), func(m *android.Ctx) {
				for _, l := range group {
					m.Write(l)
				}
				m.SetFlag(flag)
			})
		}
	})
	c.Fork(app+"-poster2", func(b *android.Ctx) {
		for i, group := range bundlesT {
			group := group
			h.Post(b, fmt.Sprintf("%s.refresh%d", app, i), func(m *android.Ctx) {
				for _, l := range group {
					m.Read(l)
				}
			})
		}
		for i, group := range bundlesF {
			group := group
			b.WaitFlag(fmt.Sprintf("%s.cross.done%d", app, i))
			h.Post(b, fmt.Sprintf("%s.refreshfp%d", app, i), func(m *android.Ctx) {
				for _, l := range group {
					m.Read(l)
				}
			})
		}
	})
}

// seedDelayedBatch plants delayed races: for each location bundle, a
// delayed task and a plain task posted around schedule-dependent work.
// True entries use a short timeout comparable to the intervening work, so
// either order occurs; false entries use a timeout far beyond any possible
// interleaving (with the margin enforced by a flag). Adds one thread
// without a queue.
func seedDelayedBatch(c *android.Ctx, app string, nTrue, nFalse, perTask int) {
	bundlesT := bundles(raceLocs(app, "delayed", nTrue), perTask)
	bundlesF := bundles(raceLocs(app, "delayedfp", nFalse), perTask)
	h := c.Env.MainHandler()
	c.Fork(app+"-delayer", func(b *android.Ctx) {
		for i, group := range bundlesT {
			group := group
			h.PostDelayed(b, fmt.Sprintf("%s.timeout%d", app, i), func(m *android.Ctx) {
				for _, l := range group {
					m.Write(l)
				}
			}, 4)
			fieldSweep(b, fmt.Sprintf("%s.dwork%d", app, i), 2)
			h.Post(b, fmt.Sprintf("%s.poll%d", app, i), func(m *android.Ctx) {
				for _, l := range group {
					m.Read(l)
				}
			})
		}
		for i, group := range bundlesF {
			group := group
			// The delayed post comes FIRST, so the delayed-FIFO refinement
			// derives no ordering and the pair is reported — but the
			// timeout is so large that the plain task always runs long
			// before it: a false positive that only timing reasoning could
			// rule out, the paper's description of the delayed category.
			h.PostDelayed(b, fmt.Sprintf("%s.timeoutfp%d", app, i), func(m *android.Ctx) {
				for _, l := range group {
					m.Write(l)
				}
			}, 1_000_000)
			h.Post(b, fmt.Sprintf("%s.pollfp%d", app, i), func(m *android.Ctx) {
				for _, l := range group {
					m.Read(l)
				}
			})
		}
	})
}

// seedUnknownBatch plants unknown-category races: pairs of tasks
// self-posted by the main thread from one parent task, the second to the
// front of the queue — the FIFO exception the paper defers to future
// work, which defeats every classification criterion. False entries raise
// a flag in the front task that the back task waits on, so the reverse
// order would deadlock and is never observable. Adds no threads. Call
// from a main-thread task context.
func seedUnknownBatch(c *android.Ctx, app string, nTrue, nFalse, perTask int) {
	bundlesT := bundles(raceLocs(app, "unk", nTrue), perTask)
	bundlesF := bundles(raceLocs(app, "unkfp", nFalse), perTask)
	h := c.Env.MainHandler()
	for i, group := range bundlesT {
		group := group
		h.Post(c, fmt.Sprintf("%s.uback%d", app, i), func(m *android.Ctx) {
			for _, l := range group {
				m.Write(l)
			}
		})
		h.PostAtFront(c, fmt.Sprintf("%s.ufront%d", app, i), func(m *android.Ctx) {
			for _, l := range group {
				m.Read(l)
			}
		})
	}
	for i, group := range bundlesF {
		group := group
		flag := fmt.Sprintf("%s.unk.flag%d", app, i)
		h.Post(c, fmt.Sprintf("%s.ubackfp%d", app, i), func(m *android.Ctx) {
			m.WaitFlag(flag)
			for _, l := range group {
				m.Write(l)
			}
		})
		h.PostAtFront(c, fmt.Sprintf("%s.ufrontfp%d", app, i), func(m *android.Ctx) {
			for _, l := range group {
				m.Read(l)
			}
			m.SetFlag(flag)
		})
	}
}

// busyTasksMain posts n small self-tasks from the current main-thread
// task. NOPRE orders them after the parent, so no races result; only the
// "Async. tasks" column grows. Adds no threads.
func busyTasksMain(c *android.Ctx, name string, n int) {
	h := c.Env.MainHandler()
	for i := 0; i < n; i++ {
		loc := trace.Loc(fmt.Sprintf("%s.mitem%d", name, i))
		c.Write(loc)
		h.Post(c, fmt.Sprintf("%s.mtask%d", name, i), func(m *android.Ctx) {
			m.Read(loc)
		})
	}
}

// coEnabledButtons registers one pair of enabled buttons whose handlers
// conflict on nTrue+nFalse locations: two UI events co-enabled on one
// screen. The false entries are accessed by the second handler only after
// the first ran (a Go-level condition models state the real app checks),
// so the reverse access order cannot occur. Firing both buttons exposes
// the races. Handlers also run `work` field sweeps to weight the trace.
func coEnabledButtons(c *android.Ctx, app string, nTrue, nFalse, work int) {
	locsT := raceLocs(app, "co", nTrue)
	locsF := raceLocs(app, "cofp", nFalse)
	firstRan := false
	c.AddButton(app+"-action1", true, func(m *android.Ctx) {
		for _, l := range locsT {
			m.Write(l)
		}
		for _, l := range locsF {
			m.Write(l)
		}
		firstRan = true
		fieldSweep(m, app+".action1", work)
	})
	c.AddButton(app+"-action2", true, func(m *android.Ctx) {
		for _, l := range locsT {
			m.Read(l)
		}
		if firstRan {
			for _, l := range locsF {
				m.Read(l)
			}
			// Consume what action1 produced: extra work that makes the
			// two-button sequence the longest explored test, so the
			// representative trace exposes the co-enabled races.
			fieldSweep(m, app+".consume", work+2)
		}
		fieldSweep(m, app+".action2", work)
	})
}

// busyTasks posts n small tasks from a worker thread, inflating the
// Table 2 "Async. tasks" column the way chatty applications do. Each task
// touches its own field, so no races result. Adds one thread.
func busyTasks(c *android.Ctx, name string, n int) {
	h := c.Env.MainHandler()
	c.Fork(name+"-pump", func(b *android.Ctx) {
		for i := 0; i < n; i++ {
			loc := trace.Loc(fmt.Sprintf("%s.item%d", name, i))
			b.Write(loc)
			h.Post(b, fmt.Sprintf("%s.task%d", name, i), func(m *android.Ctx) {
				m.Read(loc)
			})
		}
	})
}

// plainWorkers forks n plain threads that do thread-local work, inflating
// the Table 2 "Threads (w/o Qs)" column without adding races.
func plainWorkers(c *android.Ctx, name string, n, work int) {
	for i := 0; i < n; i++ {
		i := i
		c.Fork(fmt.Sprintf("%s-%d", name, i), func(b *android.Ctx) {
			fieldSweep(b, fmt.Sprintf("%s.%d", name, i), work)
		})
	}
}

// queueWorkers creates n HandlerThreads that each process `jobs` posted
// jobs of `work` field sweeps, inflating the "Threads (w/ Qs)" column.
func queueWorkers(c *android.Ctx, name string, n, jobs, work int) {
	for i := 0; i < n; i++ {
		h := c.NewHandlerThread(fmt.Sprintf("%s-%d", name, i))
		for j := 0; j < jobs; j++ {
			prefix := fmt.Sprintf("%s.%d.%d", name, i, j)
			h.Post(c, prefix, func(w *android.Ctx) {
				fieldSweep(w, prefix, work)
			})
		}
	}
}

// lockedCounter bumps a shared counter under a lock from both the current
// thread and a background thread: correctly synchronized, never reported.
// Adds one thread.
func lockedCounter(c *android.Ctx, name string, loc trace.Loc) {
	l := trace.LockID(name + ".mu")
	c.Fork(name+"-incr", func(b *android.Ctx) {
		b.Acquire(l)
		b.Write(loc)
		b.Release(l)
	})
	c.Acquire(l)
	c.Write(loc)
	c.Release(l)
}
