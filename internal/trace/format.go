package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"droidracer/internal/obs"
)

// Format writes tr to w in the textual trace format, one operation per
// line, e.g.:
//
//	threadinit(t1)
//	attachQ(t1)
//	loopOnQ(t1)
//	post(t0,LAUNCH_ACTIVITY,t1)
//
// Lines beginning with '#' and blank lines are ignored by Parse, so traces
// may be annotated by hand.
func Format(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for _, op := range tr.Ops() {
		if _, err := fmt.Fprintln(bw, op.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a trace in the textual format produced by Format. It
// streams from r line by line — memory is proportional to the parsed
// operations plus one line buffer, never to the input size — so a
// long-running daemon can parse multi-gigabyte spooled traces without
// first loading them into memory.
func Parse(r io.Reader) (*Trace, error) {
	return parseInto(&Trace{}, r)
}

func parseInto(tr *Trace, r io.Reader) (*Trace, error) {
	sp := time.Now()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := ParseOp(line)
		if err != nil {
			parseErrors.Inc()
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		tr.Append(op)
	}
	if err := sc.Err(); err != nil {
		parseErrors.Inc()
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("line %d: line exceeds the %d-byte limit", lineno+1, 16*1024*1024)
		}
		return nil, fmt.Errorf("line %d: %w", lineno+1, err)
	}
	if obs.ExporterAttached() {
		parseOps.Add(tr.Len())
		parseTraces.Inc()
		parseDur.ObserveDuration(time.Since(sp))
	}
	return tr, nil
}

// SizeError reports a declared-size directive that the input cannot
// possibly back: the declared operation count, times the smallest
// encodable operation line, exceeds the bytes actually present. It is
// the typed signal the admission layer turns into a 422 — the declared
// size must never be trusted into an allocation first.
type SizeError struct {
	// Declared is the operation count the directive claimed.
	Declared int
	// InputBytes is the size of the input carrying the claim.
	InputBytes int
	// Max is the largest operation count InputBytes could encode.
	Max int
}

// Error implements error.
func (e *SizeError) Error() string {
	return fmt.Sprintf("trace: directive declares %d ops but %d input bytes can hold at most %d",
		e.Declared, e.InputBytes, e.Max)
}

// minOpBytes is the smallest textual encoding of one operation plus its
// newline — shorter than any real op line ("read(t0,x)\n" is 11 bytes) —
// used to bound what a declared operation count may claim.
const minOpBytes = 8

// DeclaredOps extracts the optional size directive from the head of a
// textual trace: a first non-blank line of the form
//
//	#! ops=N
//
// declaring the operation count so parsers can preallocate. The line
// starts with '#', so parsers without directive support skip it as a
// comment. The declared count is validated against the input length
// before anyone allocates from it: a count the remaining bytes cannot
// possibly encode returns a *SizeError, and a directive that fails to
// parse returns a plain error — both refuse the input instead of
// trusting it into gigabytes of Op slots. Returns 0 with no error when
// no directive is present.
func DeclaredOps(data []byte) (int, error) {
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		line := rest
		if nl >= 0 {
			line = rest[:nl]
			rest = rest[nl+1:]
		} else {
			rest = nil
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		if !bytes.HasPrefix(trimmed, []byte("#!")) {
			return 0, nil // first real line is not a directive
		}
		for _, field := range strings.Fields(string(trimmed[2:])) {
			val, ok := strings.CutPrefix(field, "ops=")
			if !ok {
				continue
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("trace: bad size directive %q", clip(string(trimmed)))
			}
			if max := len(data) / minOpBytes; n > max {
				return 0, &SizeError{Declared: n, InputBytes: len(data), Max: max}
			}
			return n, nil
		}
		return 0, nil // a #! line without ops= declares nothing
	}
	return 0, nil
}

// ParseBytes parses an in-memory trace — a thin wrapper over the
// streaming Parse for callers that already hold the bytes (fuzzers,
// tests, corruption operators). A declared-size directive (see
// DeclaredOps) is validated against the input length and then drives
// preallocation; a count the bytes cannot back is refused with a
// *SizeError before any allocation happens.
func ParseBytes(data []byte) (*Trace, error) {
	n, err := DeclaredOps(data)
	if err != nil {
		parseErrors.Inc()
		return nil, err
	}
	return parseInto(New(n), bytes.NewReader(data))
}

// ParseFile opens and parses the trace at path, streaming it through
// Parse so the file is never resident in memory at once. It is the entry
// point the spool-watching daemon uses per job.
func ParseFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := Parse(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// clip bounds how much of an offending input line an error message
// echoes; a multi-megabyte token must not become a multi-megabyte error.
func clip(s string) string {
	const max = 128
	if len(s) <= max {
		return s
	}
	return s[:max] + fmt.Sprintf("... (%d bytes)", len(s))
}

// opArity is the argument count of every known opcode; ParseOp rejects
// unknown opcodes before looking at arguments.
var opArity = map[string]int{
	"threadinit": 1, "threadexit": 1, "attachQ": 1, "loopOnQ": 1,
	"fork": 2, "join": 2,
	"post": 3, "postf": 3, "postd": 4,
	"begin": 2, "end": 2, "enable": 2, "cancel": 2,
	"acquire": 2, "release": 2,
	"read": 2, "write": 2,
}

// ParseOp parses a single operation in its textual form.
func ParseOp(s string) (Op, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Op{}, fmt.Errorf("malformed operation %q", clip(s))
	}
	name := s[:open]
	wantArity, known := opArity[name]
	if !known {
		return Op{}, fmt.Errorf("unknown opcode %q", clip(name))
	}
	args := strings.Split(s[open+1:len(s)-1], ",")
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	if len(args) != wantArity {
		return Op{}, fmt.Errorf("%s: want %d arguments, got %d in %q", name, wantArity, len(args), clip(s))
	}
	// Names (tasks, locks, locations) must be non-empty, or formatting
	// the operation would not round-trip.
	nonEmpty := func(what string, i int) error {
		if args[i] == "" {
			return fmt.Errorf("%s: empty %s name in %q", name, what, clip(s))
		}
		return nil
	}
	thr, err := parseThread(args[0])
	if err != nil {
		return Op{}, fmt.Errorf("%s: %w", name, err)
	}
	switch name {
	case "threadinit", "threadexit", "attachQ", "loopOnQ":
		kinds := map[string]Kind{
			"threadinit": OpThreadInit, "threadexit": OpThreadExit,
			"attachQ": OpAttachQ, "loopOnQ": OpLoopOnQ,
		}
		return Op{Kind: kinds[name], Thread: thr}, nil
	case "fork", "join":
		other, err := parseThread(args[1])
		if err != nil {
			return Op{}, fmt.Errorf("%s: %w", name, err)
		}
		k := OpFork
		if name == "join" {
			k = OpJoin
		}
		return Op{Kind: k, Thread: thr, Other: other}, nil
	case "post", "postf":
		if err := nonEmpty("task", 1); err != nil {
			return Op{}, err
		}
		dest, err := parseThread(args[2])
		if err != nil {
			return Op{}, fmt.Errorf("%s: %w", name, err)
		}
		return Op{Kind: OpPost, Thread: thr, Task: TaskID(args[1]), Other: dest, Front: name == "postf"}, nil
	case "postd":
		if err := nonEmpty("task", 1); err != nil {
			return Op{}, err
		}
		dest, err := parseThread(args[2])
		if err != nil {
			return Op{}, fmt.Errorf("postd: %w", err)
		}
		delay, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil || delay < 0 {
			return Op{}, fmt.Errorf("postd: bad delay %q", args[3])
		}
		return Op{Kind: OpPost, Thread: thr, Task: TaskID(args[1]), Other: dest, Delayed: true, Delay: delay}, nil
	case "begin", "end", "enable", "cancel":
		if err := nonEmpty("task", 1); err != nil {
			return Op{}, err
		}
		kinds := map[string]Kind{
			"begin": OpBegin, "end": OpEnd, "enable": OpEnable, "cancel": OpCancel,
		}
		return Op{Kind: kinds[name], Thread: thr, Task: TaskID(args[1])}, nil
	case "acquire", "release":
		if err := nonEmpty("lock", 1); err != nil {
			return Op{}, err
		}
		k := OpAcquire
		if name == "release" {
			k = OpRelease
		}
		return Op{Kind: k, Thread: thr, Lock: LockID(args[1])}, nil
	default: // "read", "write"
		if err := nonEmpty("location", 1); err != nil {
			return Op{}, err
		}
		k := OpRead
		if name == "write" {
			k = OpWrite
		}
		return Op{Kind: k, Thread: thr, Loc: Loc(args[1])}, nil
	}
}

func parseThread(s string) (ThreadID, error) {
	if len(s) < 2 || s[0] != 't' {
		return 0, fmt.Errorf("bad thread id %q", clip(s))
	}
	n, err := strconv.ParseInt(s[1:], 10, 32)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad thread id %q", clip(s))
	}
	return ThreadID(n), nil
}
