package eval

import (
	"testing"

	"droidracer/internal/apps"
	"droidracer/internal/paper"
	"droidracer/internal/race"
)

// runAll evaluates every Table 2 app once per test binary invocation.
var cachedResults []*AppResult

func results(t *testing.T) []*AppResult {
	t.Helper()
	if testing.Short() {
		t.Skip("full evaluation run skipped in -short mode")
	}
	if cachedResults == nil {
		rs, err := RunAll(apps.All())
		if err != nil {
			t.Fatal(err)
		}
		cachedResults = rs
	}
	return cachedResults
}

func paperRow2(name string) paper.Table2Row {
	for _, r := range paper.Table2 {
		if r.App == name {
			return r
		}
	}
	return paper.Table2Row{}
}

func paperRow3(name string) paper.Table3Row {
	for _, r := range paper.Table3 {
		if r.App == name {
			return r
		}
	}
	return paper.Table3Row{}
}

// within checks a measured value lands within frac of the published one.
func within(t *testing.T, what string, measured, published int, frac float64) {
	t.Helper()
	lo := float64(published) * (1 - frac)
	hi := float64(published) * (1 + frac)
	if f := float64(measured); f < lo || f > hi {
		t.Errorf("%s = %d, published %d (tolerance ±%.0f%%)", what, measured, published, 100*frac)
	}
}

// TestTable2Shape checks the regenerated Table 2 against the published
// one: thread and queue counts exactly, task counts within ±2, trace
// length and field counts within 10%.
func TestTable2Shape(t *testing.T) {
	for _, r := range results(t) {
		p := paperRow2(r.App.Name())
		name := r.App.Name()
		if r.Stats.ThreadsNoQ != p.ThreadsNoQ {
			t.Errorf("%s: threads w/o queue = %d, published %d", name, r.Stats.ThreadsNoQ, p.ThreadsNoQ)
		}
		if r.Stats.ThreadsQ != p.ThreadsQ {
			t.Errorf("%s: threads w/ queue = %d, published %d", name, r.Stats.ThreadsQ, p.ThreadsQ)
		}
		if d := r.Stats.AsyncTasks - p.AsyncTasks; d < -2 || d > 2 {
			t.Errorf("%s: async tasks = %d, published %d", name, r.Stats.AsyncTasks, p.AsyncTasks)
		}
		within(t, name+": trace length", r.Stats.Length, p.TraceLen, 0.10)
		within(t, name+": fields", r.Stats.Fields, p.Fields, 0.10)
	}
}

// TestTable2Ordering checks the paper's row ordering (ascending trace
// length) is preserved by the models.
func TestTable2Ordering(t *testing.T) {
	rs := results(t)
	open := 0
	for i, r := range rs {
		if r.App.Proprietary() {
			continue
		}
		if i > 0 && open > 0 {
			prev := rs[open-1]
			_ = prev
		}
		open = i + 1
	}
	// The open-source rows are sorted ascending in the paper; check ours.
	var last int
	for _, r := range rs {
		if r.App.Proprietary() {
			continue
		}
		if r.Stats.Length < last {
			t.Errorf("%s: trace length %d breaks the ascending Table 2 order", r.App.Name(), r.Stats.Length)
		}
		last = r.Stats.Length
	}
}

// TestTable3MatchesPaper checks the regenerated Table 3 against the
// published one exactly: reported counts per category and true positives
// for the open-source applications.
func TestTable3MatchesPaper(t *testing.T) {
	for _, r := range results(t) {
		p := paperRow3(r.App.Name())
		name := r.App.Name()
		check := func(cat string, got CategoryCount, want paper.Count) {
			if got.Reported != want.Reported {
				t.Errorf("%s %s: reported %d, published %d", name, cat, got.Reported, want.Reported)
			}
			if !r.App.Proprietary() && got.True != want.True {
				t.Errorf("%s %s: true positives %d, published %d", name, cat, got.True, want.True)
			}
		}
		check("multithreaded", r.Multithreaded, p.Multithreaded)
		check("cross-posted", r.CrossPosted, p.CrossPosted)
		check("co-enabled", r.CoEnabled, p.CoEnabled)
		check("delayed", r.Delayed, p.Delayed)
		check("unknown", r.Unknown, p.Unknown)
	}
}

// TestOpenSourceTotals checks the headline numbers of §6: 215 reports on
// the open-source applications, 80 confirmed true positives (37%).
func TestOpenSourceTotals(t *testing.T) {
	reported, confirmed := 0, 0
	for _, r := range results(t) {
		if r.App.Proprietary() {
			continue
		}
		reported += r.TotalReported()
		confirmed += r.TotalTrue()
	}
	if reported != 215 {
		t.Errorf("open-source reports = %d, published 215", reported)
	}
	if confirmed != 80 {
		t.Errorf("open-source true positives = %d, published 80", confirmed)
	}
}

// TestMergeRatioInPublishedRange checks the node-merging optimization
// lands in the published regime: per-app ratios between 1.4% and 24.8%
// was the paper's range; we assert each app compresses to under 30% and
// the average is under 15%.
func TestMergeRatioInPublishedRange(t *testing.T) {
	sum := 0.0
	for _, r := range results(t) {
		if r.MergeRatio > 0.30 {
			t.Errorf("%s: merge ratio %.1f%% exceeds 30%%", r.App.Name(), 100*r.MergeRatio)
		}
		if r.GraphNodes >= r.UnmergedNodes {
			t.Errorf("%s: merging did not reduce nodes", r.App.Name())
		}
		sum += r.MergeRatio
	}
	if avg := sum / float64(len(results(t))); avg > 0.15 {
		t.Errorf("average merge ratio %.1f%% exceeds 15%% (published avg 11.1%%)", 100*avg)
	}
}

// TestGroundTruthDetected checks every seeded true race is found and
// correctly categorized on the open-source apps.
func TestGroundTruthDetected(t *testing.T) {
	for _, r := range results(t) {
		if r.App.Proprietary() {
			continue
		}
		byLoc := map[string]race.Category{}
		for _, rc := range r.Races {
			byLoc[string(rc.Loc)] = rc.Category
		}
		for _, gt := range r.App.GroundTruth() {
			cat, ok := byLoc[string(gt.Loc)]
			if !ok {
				t.Errorf("%s: seeded race on %s not reported", r.App.Name(), gt.Loc)
				continue
			}
			if cat != gt.Category {
				t.Errorf("%s: race on %s classified %v, seeded as %v", r.App.Name(), gt.Loc, cat, gt.Category)
			}
		}
	}
}

// TestOverheadMeasurable checks the trace-generation overhead experiment
// runs and produces a sane ratio (recording on vs off).
func TestOverheadMeasurable(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement skipped in -short mode")
	}
	app, err := apps.New("Aard Dictionary")
	if err != nil {
		t.Fatal(err)
	}
	with, without, err := Overhead(app, 2)
	if err != nil {
		t.Fatal(err)
	}
	if with <= 0 || without <= 0 {
		t.Fatalf("with=%v without=%v", with, without)
	}
	ratio := float64(with) / float64(without)
	// The paper reports up to 5x; our logging is cheap relative to the
	// simulated work, so just require the ratio to be positive and sane.
	if ratio < 0.2 || ratio > 25 {
		t.Errorf("overhead ratio %.2f implausible", ratio)
	}
}

// TestAnalysisMemoryModest checks the analysis-side claim of §6 (up to
// 20 MB) indirectly: the largest merged graph stays small.
func TestAnalysisMemoryModest(t *testing.T) {
	for _, r := range results(t) {
		// Two bitset rows per node: 2 * n²/8 bytes. Require < 64 MB.
		bytes := 2 * r.GraphNodes * (r.GraphNodes/8 + 8)
		if bytes > 64<<20 {
			t.Errorf("%s: graph memory ≈ %d MB", r.App.Name(), bytes>>20)
		}
	}
}

// TestTriageAardDictionary automates the paper's DDMS validation on the
// smallest app: its single multithreaded race is seeded true and must be
// confirmable by reorder-replay; triage must not claim more confirmations
// than reports.
func TestTriageAardDictionary(t *testing.T) {
	if testing.Short() {
		t.Skip("triage skipped in -short mode")
	}
	app, err := apps.New("Aard Dictionary")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Triage(app, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 1 {
		t.Fatalf("triaged %d races, want 1", len(res.Races))
	}
	if res.Confirmed != 1 {
		t.Fatalf("the seeded true multithreaded race was not confirmed in %d attempts", res.Races[0].Attempts)
	}
}

// TestTriageRespectsGroundTruthDirection checks triage never confirms an
// ad-hoc-synchronized false positive: My Tracks has one true cross-posted
// race among mostly false reports.
func TestTriageRespectsGroundTruthDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("triage skipped in -short mode")
	}
	app, err := apps.New("My Tracks")
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]bool{}
	for _, gt := range app.GroundTruth() {
		truth[string(gt.Loc)] = true
	}
	res, err := Triage(app, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Races {
		if tr.Confirmed && !truth[string(tr.Race.Loc)] {
			t.Errorf("triage confirmed the false positive on %s (flag-ordered accesses reordered?)", tr.Race.Loc)
		}
	}
}
